package convert

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"udbench/internal/mmvalue"
	"udbench/internal/xmlstore"
)

// randomDocs builds a random schemaless collection with the shapes the
// shredder must survive: heterogeneous scalar fields, nested objects,
// arrays of objects (present / empty / missing per document) and
// arrays of scalars.
func randomDocs(r *rand.Rand) []mmvalue.Value {
	n := 1 + r.Intn(12)
	fieldPool := []string{"alpha", "beta", "gamma", "delta"}
	docs := make([]mmvalue.Value, n)
	for i := 0; i < n; i++ {
		o := mmvalue.NewObject()
		o.Set("_id", mmvalue.String(fmt.Sprintf("d%03d", i)))
		for _, f := range fieldPool {
			switch r.Intn(6) {
			case 0:
				o.Set(f, mmvalue.Int(int64(r.Intn(100))))
			case 1:
				o.Set(f, mmvalue.Float(r.Float64()*10))
			case 2:
				o.Set(f, mmvalue.String(fmt.Sprintf("s%d", r.Intn(5))))
			case 3:
				o.Set(f, mmvalue.Bool(r.Intn(2) == 0))
			case 4:
				// absent
			case 5:
				nested := mmvalue.NewObject()
				nested.Set("x", mmvalue.Int(int64(r.Intn(10))))
				if r.Intn(2) == 0 {
					nested.Set("y", mmvalue.String("deep"))
				}
				o.Set(f, mmvalue.FromObject(nested))
			}
		}
		// Array-of-objects field: missing / empty / populated.
		switch r.Intn(3) {
		case 0:
			// missing entirely
		case 1:
			o.Set("items", mmvalue.Array())
		case 2:
			k := 1 + r.Intn(3)
			elems := make([]mmvalue.Value, k)
			for j := 0; j < k; j++ {
				e := mmvalue.NewObject()
				e.Set("sku", mmvalue.String(fmt.Sprintf("p%d", r.Intn(9))))
				if r.Intn(2) == 0 {
					e.Set("qty", mmvalue.Int(int64(1+r.Intn(5))))
				}
				elems[j] = mmvalue.FromObject(e)
			}
			o.Set("items", mmvalue.Array(elems...))
		}
		// Array of scalars sometimes.
		if r.Intn(3) == 0 {
			k := r.Intn(4)
			tags := make([]mmvalue.Value, k)
			for j := 0; j < k; j++ {
				tags[j] = mmvalue.String(fmt.Sprintf("t%d", r.Intn(6)))
			}
			o.Set("tags", mmvalue.Array(tags...))
		}
		docs[i] = mmvalue.FromObject(o)
	}
	return docs
}

// Property: shred → validate every row → nest reproduces the original
// collection exactly, for arbitrary heterogeneous documents.
func TestPropShredNestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocs(r)
		sr, err := ShredDocs("p", docs)
		if err != nil {
			t.Logf("seed %d: shred error: %v", seed, err)
			return false
		}
		for _, row := range sr.Parent.Rows {
			if err := sr.Parent.Schema.ValidateRow(row); err != nil {
				t.Logf("seed %d: invalid parent row: %v", seed, err)
				return false
			}
		}
		for _, ct := range sr.Children {
			for _, row := range ct.Rows {
				if err := ct.Schema.ValidateRow(row); err != nil {
					t.Logf("seed %d: invalid child row: %v", seed, err)
					return false
				}
			}
		}
		back, err := NestShredded(sr)
		if err != nil {
			t.Logf("seed %d: nest error: %v", seed, err)
			return false
		}
		if len(back) != len(docs) {
			t.Logf("seed %d: length %d vs %d", seed, len(back), len(docs))
			return false
		}
		for i := range docs {
			if !mmvalue.Equal(docs[i], back[i]) {
				t.Logf("seed %d doc %d:\norig %s\nback %s", seed, i, docs[i], back[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: XML built from random JSON-ish values following the
// XMLToDoc conventions round-trips exactly (no same-named-sibling
// interleaving is generated, matching the documented-lossless subset).
func TestPropXMLJSONRoundTrip(t *testing.T) {
	var build func(r *rand.Rand, depth int) *xmlstore.Node
	build = func(r *rand.Rand, depth int) *xmlstore.Node {
		el := xmlstore.NewElement(fmt.Sprintf("e%d", r.Intn(5)))
		for i := 0; i < r.Intn(3); i++ {
			el.SetAttr(fmt.Sprintf("a%d", i), fmt.Sprintf("v%d", r.Intn(9)))
		}
		if depth <= 0 || r.Intn(3) == 0 {
			if r.Intn(2) == 0 {
				el.Append(xmlstore.NewText(fmt.Sprintf("text%d", r.Intn(9))))
			}
			return el
		}
		// Children grouped by name to stay in the lossless subset.
		nGroups := 1 + r.Intn(2)
		for g := 0; g < nGroups; g++ {
			name := fmt.Sprintf("g%d", g)
			k := 1 + r.Intn(3)
			for j := 0; j < k; j++ {
				child := build(r, depth-1)
				child.Name = name
				el.Append(child)
			}
		}
		return el
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := build(r, 3)
		orig.Name = "root"
		back, err := DocToXML(XMLToDoc(orig))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !xmlstore.Equal(orig, back) {
			t.Logf("seed %d:\norig %s\nback %s", seed, xmlstore.Marshal(orig), xmlstore.Marshal(back))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: KV round trip is exact for arbitrary JSON-safe values.
func TestPropKVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pairs []KVPair
		for i := 0; i < 1+r.Intn(10); i++ {
			var v mmvalue.Value
			switch r.Intn(4) {
			case 0:
				v = mmvalue.Int(int64(r.Intn(1000)))
			case 1:
				v = mmvalue.String(fmt.Sprintf("v%d", r.Intn(100)))
			case 2:
				v = mmvalue.ObjectOf("a", r.Intn(10), "b", fmt.Sprintf("x%d", r.Intn(10)))
			case 3:
				v = mmvalue.Array(mmvalue.Int(1), mmvalue.Bool(true), mmvalue.Null)
			}
			pairs = append(pairs, KVPair{Key: fmt.Sprintf("k/%03d", i), Value: v})
		}
		rows, err := KVToRows(pairs)
		if err != nil {
			return false
		}
		back, err := RowsToKV(rows)
		if err != nil || len(back) != len(pairs) {
			return false
		}
		for i := range pairs {
			if back[i].Key != pairs[i].Key || !mmvalue.Equal(back[i].Value, pairs[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Regression: a document missing an array field must not gain an empty
// array through the round trip (distinguished by the count column).
func TestMissingVsEmptyArrayRoundTrip(t *testing.T) {
	docs := []mmvalue.Value{
		mmvalue.MustParseJSON(`{"_id":"a","items":[{"sku":"x"}]}`),
		mmvalue.MustParseJSON(`{"_id":"b","items":[]}`),
		mmvalue.MustParseJSON(`{"_id":"c"}`),
	}
	sr, err := ShredDocs("m", docs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := NestShredded(sr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range docs {
		if !mmvalue.Equal(docs[i], back[i]) {
			t.Errorf("doc %d:\norig %s\nback %s", i, docs[i], back[i])
		}
	}
	// The count column encodes the distinction.
	if sr.Parent.CountCols["items"] == "" {
		t.Fatal("count column missing")
	}
	cnt := sr.Parent.CountCols["items"]
	rowB := sr.Parent.Rows[1].MustObject()
	if v, _ := rowB.Get(cnt); !mmvalue.Equal(v, mmvalue.Int(0)) {
		t.Errorf("empty array count = %s", v)
	}
	rowC := sr.Parent.Rows[2].MustObject()
	if _, ok := rowC.Get(cnt); ok {
		t.Error("missing array should have null count")
	}
}
