// Package convert implements the multi-model data conversion pillar of
// the UDBMS benchmark: transformations between the relational and
// NoSQL representations with measurable round-trip fidelity against
// gold-standard outputs (the generator's original data).
//
// Conversions:
//
//   - relational rows ↔ JSON documents (nesting / shredding with child
//     tables for arrays of objects);
//   - XML ↔ JSON documents (attribute/@, text/#text conventions);
//   - relational rows ↔ property graph (vertex per row, edge per
//     foreign key);
//   - key-value pairs ↔ relational rows.
//
// Each converter documents what it loses; Fidelity quantifies it.
package convert

import (
	"fmt"
	"sort"
	"strings"

	"udbench/internal/mmschema"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
)

// ColumnMap records how one relational column maps back to a document
// path, enabling lossless reassembly.
type ColumnMap struct {
	// Column is the relational column name.
	Column string
	// Path is the dotted document path the column came from.
	Path string
	// JSON marks columns holding a JSON-encoded complex value.
	JSON bool
}

// TableData is a self-contained relational table: schema, rows and the
// column-to-path mapping used for reassembly.
type TableData struct {
	Name   string
	Schema relational.Schema
	Rows   []mmvalue.Value
	Maps   []ColumnMap
	// CountCols maps an array-of-objects path to the parent column
	// holding its element count (null when the source document lacked
	// the field entirely) — what lets reassembly distinguish a missing
	// array from an empty one.
	CountCols map[string]string
}

// ShredResult is the relational form of a document collection: one
// parent table plus one child table per array-of-objects field.
type ShredResult struct {
	Parent *TableData
	// Children maps the array path to its child table.
	Children map[string]*TableData
	// Notes documents lossy corners encountered (JSON-encoded columns).
	Notes []string
}

// reserved child-table columns.
const (
	parentCol = "_parent"
	idxCol    = "_idx"
)

// ShredDocs converts a document collection to relational form. Scalar
// paths become columns (dots replaced by "_", disambiguated on
// collision); arrays of objects become child tables keyed by
// (_parent, _idx); other complex values are JSON-encoded into string
// columns, which is recorded in Notes. Documents must carry a string
// _id, which becomes the parent primary key.
func ShredDocs(name string, docs []mmvalue.Value) (*ShredResult, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("convert: shred %s: empty collection", name)
	}
	schema := mmschema.Infer(docs)
	if _, ok := schema.Field("_id"); !ok {
		return nil, fmt.Errorf("convert: shred %s: documents must have _id", name)
	}

	// Classify paths.
	arrayObjPaths := map[string]bool{}
	for _, p := range schema.Paths() {
		f, _ := schema.Field(p)
		if f.Type == mmschema.FTArray && allElementsObjects(docs, p) {
			arrayObjPaths[p] = true
		}
	}
	res := &ShredResult{Children: make(map[string]*TableData)}

	parent, notes, err := buildTable(name, docs, schema, arrayObjPaths, "_id")
	if err != nil {
		return nil, err
	}
	res.Parent = parent
	res.Notes = append(res.Notes, notes...)
	if err := addCountColumns(parent, docs, arrayObjPaths); err != nil {
		return nil, err
	}

	for ap := range arrayObjPaths {
		child, cnotes, err := buildChildTable(name, ap, docs)
		if err != nil {
			return nil, err
		}
		res.Children[ap] = child
		res.Notes = append(res.Notes, cnotes...)
	}
	sort.Strings(res.Notes)
	return res, nil
}

func allElementsObjects(docs []mmvalue.Value, path string) bool {
	p := mmvalue.ParsePath(path)
	sawAny := false
	for _, d := range docs {
		v, ok := p.Lookup(d)
		if !ok {
			continue
		}
		elems, isArr := v.AsArray()
		if !isArr {
			return false
		}
		for _, e := range elems {
			sawAny = true
			if e.Kind() != mmvalue.KindObject {
				return false
			}
		}
	}
	return sawAny
}

// buildTable flattens the scalar paths of docs into one table. Paths
// under array-of-object fields are excluded (they go to child tables).
func buildTable(name string, docs []mmvalue.Value, schema *mmschema.Schema, skipUnder map[string]bool, pkPath string) (*TableData, []string, error) {
	var notes []string
	var maps []ColumnMap
	var cols []relational.Column
	used := map[string]bool{}

	colName := func(path string) string {
		base := strings.ReplaceAll(path, ".", "_")
		cand := base
		for i := 2; used[cand]; i++ {
			cand = fmt.Sprintf("%s_%d", base, i)
		}
		used[cand] = true
		return cand
	}

	paths := schema.Paths()
	for _, p := range paths {
		if underAny(p, skipUnder) {
			continue
		}
		f, _ := schema.Field(p)
		if f.Type == mmschema.FTObject {
			continue // leaves appear as dotted paths
		}
		col := colName(p)
		nullable := f.Presence < 1 || p != pkPath && f.Type == mmschema.FTNull
		switch f.Type {
		case mmschema.FTInt:
			cols = append(cols, relational.Column{Name: col, Type: relational.TypeInt, Nullable: nullable})
			maps = append(maps, ColumnMap{Column: col, Path: p})
		case mmschema.FTFloat:
			cols = append(cols, relational.Column{Name: col, Type: relational.TypeFloat, Nullable: nullable})
			maps = append(maps, ColumnMap{Column: col, Path: p})
		case mmschema.FTBool:
			cols = append(cols, relational.Column{Name: col, Type: relational.TypeBool, Nullable: nullable})
			maps = append(maps, ColumnMap{Column: col, Path: p})
		case mmschema.FTString:
			cols = append(cols, relational.Column{Name: col, Type: relational.TypeString, Nullable: nullable})
			maps = append(maps, ColumnMap{Column: col, Path: p})
		default: // arrays of scalars, mixed, null-only: JSON-encode
			cols = append(cols, relational.Column{Name: col, Type: relational.TypeString, Nullable: true})
			maps = append(maps, ColumnMap{Column: col, Path: p, JSON: true})
			notes = append(notes, fmt.Sprintf("%s.%s: %s JSON-encoded into column %s", name, p, f.Type, col))
		}
	}
	pkCol := strings.ReplaceAll(pkPath, ".", "_")
	rschema, err := relational.NewSchema(pkCol, cols...)
	if err != nil {
		return nil, nil, fmt.Errorf("convert: %s: %w", name, err)
	}
	td := &TableData{Name: name, Schema: rschema, Maps: maps}
	for _, d := range docs {
		row := mmvalue.NewObject()
		for _, m := range maps {
			v, ok := mmvalue.ParsePath(m.Path).Lookup(d)
			if !ok {
				continue
			}
			if m.JSON {
				data, err := v.MarshalJSON()
				if err != nil {
					return nil, nil, err
				}
				row.Set(m.Column, mmvalue.String(string(data)))
			} else {
				row.Set(m.Column, v.Clone())
			}
		}
		td.Rows = append(td.Rows, mmvalue.FromObject(row))
	}
	return td, notes, nil
}

// addCountColumns extends the parent table with one nullable INT
// column per array-of-objects path carrying the element count, and
// fills it for every row. Rebuilding the schema keeps validation
// exact.
func addCountColumns(td *TableData, docs []mmvalue.Value, arrayPaths map[string]bool) error {
	if len(arrayPaths) == 0 {
		return nil
	}
	td.CountCols = make(map[string]string, len(arrayPaths))
	paths := make([]string, 0, len(arrayPaths))
	for p := range arrayPaths {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	cols := append([]relational.Column{}, td.Schema.Columns...)
	for _, p := range paths {
		col := strings.ReplaceAll(p, ".", "_") + "__n"
		td.CountCols[p] = col
		cols = append(cols, relational.Column{Name: col, Type: relational.TypeInt, Nullable: true})
	}
	schema, err := relational.NewSchema(td.Schema.PrimaryKey, cols...)
	if err != nil {
		return err
	}
	td.Schema = schema
	for i, d := range docs {
		row := td.Rows[i].MustObject()
		for _, p := range paths {
			v, ok := mmvalue.ParsePath(p).Lookup(d)
			if !ok {
				continue
			}
			if elems, isArr := v.AsArray(); isArr {
				row.Set(td.CountCols[p], mmvalue.Int(int64(len(elems))))
			}
		}
	}
	return nil
}

func underAny(p string, prefixes map[string]bool) bool {
	for pre := range prefixes {
		if p == pre || strings.HasPrefix(p, pre+".") {
			return true
		}
	}
	return false
}

// buildChildTable shreds one array-of-objects field into a child table
// keyed by (_parent, _idx) with a synthetic string primary key.
func buildChildTable(parentName, arrayPath string, docs []mmvalue.Value) (*TableData, []string, error) {
	p := mmvalue.ParsePath(arrayPath)
	var elems []mmvalue.Value
	for _, d := range docs {
		if v, ok := p.Lookup(d); ok {
			es, _ := v.AsArray()
			elems = append(elems, es...)
		}
	}
	eschema := mmschema.Infer(elems)
	name := parentName + "_" + strings.ReplaceAll(arrayPath, ".", "_")
	td, notes, err := buildTable(name, nil, eschema, nil, "")
	if err != nil && len(elems) > 0 {
		// buildTable fails without a pk; rebuild manually below.
		_ = err
	}
	// Assemble schema manually: _pk (synthetic), _parent, _idx + element columns.
	cols := []relational.Column{
		{Name: "_pk", Type: relational.TypeString},
		{Name: parentCol, Type: relational.TypeString},
		{Name: idxCol, Type: relational.TypeInt},
	}
	var maps []ColumnMap
	used := map[string]bool{"_pk": true, parentCol: true, idxCol: true}
	for _, ep := range eschema.Paths() {
		f, _ := eschema.Field(ep)
		if f.Type == mmschema.FTObject {
			continue
		}
		base := strings.ReplaceAll(ep, ".", "_")
		cand := base
		for i := 2; used[cand]; i++ {
			cand = fmt.Sprintf("%s_%d", base, i)
		}
		used[cand] = true
		nullable := f.Presence < 1
		switch f.Type {
		case mmschema.FTInt:
			cols = append(cols, relational.Column{Name: cand, Type: relational.TypeInt, Nullable: nullable})
			maps = append(maps, ColumnMap{Column: cand, Path: ep})
		case mmschema.FTFloat:
			cols = append(cols, relational.Column{Name: cand, Type: relational.TypeFloat, Nullable: nullable})
			maps = append(maps, ColumnMap{Column: cand, Path: ep})
		case mmschema.FTBool:
			cols = append(cols, relational.Column{Name: cand, Type: relational.TypeBool, Nullable: nullable})
			maps = append(maps, ColumnMap{Column: cand, Path: ep})
		case mmschema.FTString:
			cols = append(cols, relational.Column{Name: cand, Type: relational.TypeString, Nullable: nullable})
			maps = append(maps, ColumnMap{Column: cand, Path: ep})
		default:
			cols = append(cols, relational.Column{Name: cand, Type: relational.TypeString, Nullable: true})
			maps = append(maps, ColumnMap{Column: cand, Path: ep, JSON: true})
			notes = append(notes, fmt.Sprintf("%s.%s: %s JSON-encoded", name, ep, f.Type))
		}
	}
	rschema, err := relational.NewSchema("_pk", cols...)
	if err != nil {
		return nil, nil, fmt.Errorf("convert: %s: %w", name, err)
	}
	td = &TableData{Name: name, Schema: rschema, Maps: maps}
	for _, d := range docs {
		idv, _ := mmvalue.ParsePath("_id").Lookup(d)
		pid, _ := idv.AsString()
		v, ok := p.Lookup(d)
		if !ok {
			continue
		}
		es, _ := v.AsArray()
		for i, e := range es {
			row := mmvalue.NewObject()
			row.Set("_pk", mmvalue.String(fmt.Sprintf("%s#%d", pid, i)))
			row.Set(parentCol, mmvalue.String(pid))
			row.Set(idxCol, mmvalue.Int(int64(i)))
			for _, m := range maps {
				ev, ok := mmvalue.ParsePath(m.Path).Lookup(e)
				if !ok {
					continue
				}
				if m.JSON {
					data, err := ev.MarshalJSON()
					if err != nil {
						return nil, nil, err
					}
					row.Set(m.Column, mmvalue.String(string(data)))
				} else {
					row.Set(m.Column, ev.Clone())
				}
			}
			td.Rows = append(td.Rows, mmvalue.FromObject(row))
		}
	}
	return td, notes, nil
}

// NestShredded reassembles documents from a shred result — the inverse
// of ShredDocs up to the documented losses (field ordering follows the
// schema's sorted paths; Int/Float distinctions may widen where the
// inferred column type widened, which mmvalue.Equal treats as equal).
func NestShredded(sr *ShredResult) ([]mmvalue.Value, error) {
	// Child rows grouped by parent id, ordered by _idx.
	type childElem struct {
		idx  int64
		elem mmvalue.Value
	}
	childrenOf := map[string]map[string][]childElem{} // arrayPath -> parentID -> elems
	for ap, ct := range sr.Children {
		group := map[string][]childElem{}
		for _, row := range ct.Rows {
			obj := row.MustObject()
			pidV, _ := obj.Get(parentCol)
			pid, _ := pidV.AsString()
			idxV, _ := obj.Get(idxCol)
			idx, _ := idxV.AsInt()
			elem, err := rebuild(obj, ct.Maps)
			if err != nil {
				return nil, err
			}
			group[pid] = append(group[pid], childElem{idx: idx, elem: elem})
		}
		for pid := range group {
			es := group[pid]
			sort.Slice(es, func(i, j int) bool { return es[i].idx < es[j].idx })
			group[pid] = es
		}
		childrenOf[ap] = group
	}

	out := make([]mmvalue.Value, 0, len(sr.Parent.Rows))
	var aps []string
	for ap := range sr.Children {
		aps = append(aps, ap)
	}
	sort.Strings(aps)
	for _, row := range sr.Parent.Rows {
		obj := row.MustObject()
		doc, err := rebuild(obj, sr.Parent.Maps)
		if err != nil {
			return nil, err
		}
		idV, _ := mmvalue.ParsePath("_id").Lookup(doc)
		id, _ := idV.AsString()
		for _, ap := range aps {
			// The count column distinguishes a missing array (null)
			// from an empty one (0).
			if cntCol, ok := sr.Parent.CountCols[ap]; ok {
				if v, present := obj.Get(cntCol); !present || v.IsNull() {
					continue
				}
			}
			es := childrenOf[ap][id]
			arr := make([]mmvalue.Value, len(es))
			for i, ce := range es {
				arr[i] = ce.elem
			}
			if doc, err = mmvalue.ParsePath(ap).Set(doc, mmvalue.Array(arr...)); err != nil {
				return nil, err
			}
		}
		out = append(out, doc)
	}
	return out, nil
}

// rebuild reconstructs a document (or array element) from one row via
// its column maps.
func rebuild(row *mmvalue.Object, maps []ColumnMap) (mmvalue.Value, error) {
	doc := mmvalue.FromObject(mmvalue.NewObject())
	for _, m := range maps {
		v, ok := row.Get(m.Column)
		if !ok || v.IsNull() {
			continue
		}
		if m.JSON {
			s, _ := v.AsString()
			parsed, err := mmvalue.ParseJSON([]byte(s))
			if err != nil {
				return mmvalue.Null, fmt.Errorf("convert: bad JSON column %s: %w", m.Column, err)
			}
			v = parsed
		}
		var err error
		doc, err = mmvalue.ParsePath(m.Path).Set(doc, v.Clone())
		if err != nil {
			return mmvalue.Null, err
		}
	}
	return doc, nil
}

// RowsToDocs converts relational rows into documents: the primary key
// becomes _id (rendered as string when not already one) and every
// other column becomes a top-level field. This is the trivial lossless
// direction.
func RowsToDocs(rows []mmvalue.Value, pkCol string) []mmvalue.Value {
	out := make([]mmvalue.Value, len(rows))
	for i, r := range rows {
		obj := r.MustObject()
		doc := mmvalue.NewObject()
		pk, _ := obj.Get(pkCol)
		if s, ok := pk.AsString(); ok {
			doc.Set("_id", mmvalue.String(s))
		} else {
			doc.Set("_id", mmvalue.String(pk.String()))
		}
		for _, k := range obj.Keys() {
			if k == pkCol {
				continue
			}
			v, _ := obj.Get(k)
			doc.Set(k, v.Clone())
		}
		// Keep the original key value for lossless reversal.
		doc.Set("_pkval", pk.Clone())
		out[i] = mmvalue.FromObject(doc)
	}
	return out
}

// DocsToRows is the inverse of RowsToDocs.
func DocsToRows(docs []mmvalue.Value, pkCol string) []mmvalue.Value {
	out := make([]mmvalue.Value, len(docs))
	for i, d := range docs {
		obj := d.MustObject()
		row := mmvalue.NewObject()
		if pkv, ok := obj.Get("_pkval"); ok {
			row.Set(pkCol, pkv.Clone())
		} else if idv, ok := obj.Get("_id"); ok {
			row.Set(pkCol, idv.Clone())
		}
		for _, k := range obj.Keys() {
			if k == "_id" || k == "_pkval" || k == pkCol {
				continue
			}
			v, _ := obj.Get(k)
			row.Set(k, v.Clone())
		}
		out[i] = mmvalue.FromObject(row)
	}
	return out
}

// Fidelity returns the fraction of positions where orig and back are
// deep-equal (mmvalue.Equal). Length mismatches count the missing
// tail as failures.
func Fidelity(orig, back []mmvalue.Value) float64 {
	n := len(orig)
	if len(back) > n {
		n = len(back)
	}
	if n == 0 {
		return 1
	}
	match := 0
	for i := 0; i < len(orig) && i < len(back); i++ {
		if mmvalue.Equal(orig[i], back[i]) {
			match++
		}
	}
	return float64(match) / float64(n)
}
