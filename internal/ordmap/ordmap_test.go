package ordmap

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetOrInsertAndGet(t *testing.T) {
	m := New[int](1)
	v, inserted := m.GetOrInsert("a", func() int { return 7 })
	if !inserted || v != 7 {
		t.Fatalf("first insert = (%d, %v)", v, inserted)
	}
	v, inserted = m.GetOrInsert("a", func() int { return 99 })
	if inserted || v != 7 {
		t.Fatalf("second insert should return existing, got (%d, %v)", v, inserted)
	}
	if got, ok := m.Get("a"); !ok || got != 7 {
		t.Fatalf("Get = (%d, %v)", got, ok)
	}
	if _, ok := m.Get("zzz"); ok {
		t.Error("missing key found")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestRemove(t *testing.T) {
	m := New[int](1)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%02d", i)
		m.GetOrInsert(k, func() int { return i })
	}
	if !m.Remove("k05") || m.Remove("k05") {
		t.Fatal("Remove semantics wrong")
	}
	if m.Len() != 19 {
		t.Errorf("Len = %d", m.Len())
	}
	if _, ok := m.Get("k05"); ok {
		t.Error("removed key still present")
	}
	// Order preserved.
	var keys []string
	m.Ascend("", "", func(k string, _ int) bool { keys = append(keys, k); return true })
	if !sort.StringsAreSorted(keys) || len(keys) != 19 {
		t.Errorf("keys after remove = %v", keys)
	}
}

func TestAscendBoundsAndStop(t *testing.T) {
	m := New[string](1)
	for _, k := range []string{"a", "c", "e", "g"} {
		k := k
		m.GetOrInsert(k, func() string { return k })
	}
	var got []string
	m.Ascend("b", "f", func(k, _ string) bool { got = append(got, k); return true })
	if fmt.Sprint(got) != "[c e]" {
		t.Errorf("bounded ascend = %v", got)
	}
	got = nil
	m.Ascend("", "", func(k, _ string) bool { got = append(got, k); return false })
	if fmt.Sprint(got) != "[a]" {
		t.Errorf("early stop = %v", got)
	}
}

func TestConcurrentInsertsAndReads(t *testing.T) {
	m := New[int](42)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := fmt.Sprintf("w%d-%04d", w, i)
				m.GetOrInsert(k, func() int { return i })
				m.Get(k)
				m.Ascend(k, "", func(string, int) bool { return false })
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", m.Len(), workers*per)
	}
}

func TestPropMatchesReferenceMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New[int](seed)
		ref := map[string]int{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("%03d", r.Intn(80))
			if r.Intn(4) == 0 {
				m.Remove(k)
				delete(ref, k)
			} else {
				val := r.Intn(100)
				if _, ok := ref[k]; !ok {
					ref[k] = val
				}
				m.GetOrInsert(k, func() int { return val })
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		var keys []string
		ok := true
		m.Ascend("", "", func(k string, v int) bool {
			keys = append(keys, k)
			if rv, present := ref[k]; !present || rv != v {
				ok = false
			}
			return true
		})
		return ok && sort.StringsAreSorted(keys) && len(keys) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc", "abd"}, {"", ""}, {"\xff\xff", ""}, {"a\xff", "b"},
	}
	for _, c := range cases {
		if got := PrefixEnd(c.in); got != c.want {
			t.Errorf("PrefixEnd(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
