// Package ordmap provides a concurrent ordered map from string keys to
// arbitrary payloads, implemented as a skip list. It is the shared
// physical index structure of the UDBench stores: the key-value store,
// relational primary keys, document collections and XML document
// registries all keep their version chains in an ordmap.Map.
//
// Structural operations (insert, remove, iterate) are guarded by an
// internal RWMutex; payload values must handle their own
// synchronization (UDBench payloads are txn version chains).
package ordmap

import (
	"math/rand"
	"sync"
)

const maxLevel = 24

// Map is an ordered map. Create with New; the zero value is not usable.
type Map[T any] struct {
	mu    sync.RWMutex
	head  *node[T]
	level int
	size  int
	rnd   *rand.Rand
}

type node[T any] struct {
	key  string
	val  T
	next []*node[T]
}

// New returns an empty map. The seed drives skip-list level selection
// only; any constant yields a correct structure.
func New[T any](seed int64) *Map[T] {
	return &Map[T]{
		head:  &node[T]{next: make([]*node[T], maxLevel)},
		level: 1,
		rnd:   rand.New(rand.NewSource(seed)),
	}
}

func (m *Map[T]) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && m.rnd.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// Get returns the payload stored at key.
func (m *Map[T]) Get(key string) (T, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := m.seekGE(key)
	if n != nil && n.key == key {
		return n.val, true
	}
	var zero T
	return zero, false
}

// seekGE returns the first node with key >= target; callers hold mu.
func (m *Map[T]) seekGE(target string) *node[T] {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < target {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// GetOrInsert returns the payload at key, inserting mk() if absent.
// The boolean reports whether an insert happened.
func (m *Map[T]) GetOrInsert(key string, mk func() T) (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	update := make([]*node[T], maxLevel)
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && n.key == key {
		return n.val, false
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	n := &node[T]{key: key, val: mk(), next: make([]*node[T], lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	m.size++
	return n.val, true
}

// Remove physically unlinks key; it reports whether the key existed.
func (m *Map[T]) Remove(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	update := make([]*node[T], maxLevel)
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	n := x.next[0]
	if n == nil || n.key != key {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if update[i].next[i] == n {
			update[i].next[i] = n.next[i]
		}
	}
	for m.level > 1 && m.head.next[m.level-1] == nil {
		m.level--
	}
	m.size--
	return true
}

// Ascend calls fn for every (key, payload) with start <= key < end in
// key order. An empty end means unbounded. Iteration stops when fn
// returns false. The structural read lock is held throughout, so fn
// must not insert or remove.
func (m *Map[T]) Ascend(start, end string, fn func(key string, val T) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for n := m.seekGE(start); n != nil; n = n.next[0] {
		if end != "" && n.key >= end {
			return
		}
		if !fn(n.key, n.val) {
			return
		}
	}
}

// Len returns the number of stored keys.
func (m *Map[T]) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// SplitPoints returns up to n-1 boundary keys that partition the key
// space into n runs of near-equal size: Ascend("", b1), Ascend(b1, b2),
// ..., Ascend(bk, "") together visit every key exactly once. Fewer
// boundaries (possibly none) are returned when the map is small. The
// boundaries reflect the keys present at call time; keys inserted later
// still fall into exactly one partition.
func (m *Map[T]) SplitPoints(n int) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if n <= 1 || m.size < 2 {
		return nil
	}
	if n > m.size {
		n = m.size
	}
	bounds := make([]string, 0, n-1)
	stride := m.size / n
	if stride == 0 {
		stride = 1
	}
	i, next := 0, stride
	for x := m.head.next[0]; x != nil && len(bounds) < n-1; x = x.next[0] {
		if i == next {
			bounds = append(bounds, x.key)
			next += stride
		}
		i++
	}
	return bounds
}

// PrefixEnd returns the smallest key greater than every key with the
// given prefix, or "" (unbounded) if the prefix is all 0xff bytes.
func PrefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}
