package document

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"udbench/internal/mmvalue"
	"udbench/internal/txn"
)

func newTestStore() *Store {
	return NewStore("doc", txn.NewManager())
}

func orderDoc(id string, cid int64, total float64, items ...string) mmvalue.Value {
	arr := make([]mmvalue.Value, len(items))
	for i, it := range items {
		arr[i] = mmvalue.ObjectOf("sku", it, "qty", 1)
	}
	return mmvalue.ObjectOf(
		"_id", id,
		"customer_id", cid,
		"total", total,
		"status", "open",
		"items", mmvalue.Array(arr...),
		"ship", map[string]any{"city": "hki", "days": 3},
	)
}

func TestCollectionAutoCreate(t *testing.T) {
	s := newTestStore()
	c1 := s.Collection("orders")
	c2 := s.Collection("orders")
	if c1 != c2 {
		t.Error("Collection should return the same instance")
	}
	s.Collection("products")
	names := s.CollectionNames()
	if strings.Join(names, ",") != "orders,products" {
		t.Errorf("CollectionNames = %v", names)
	}
	if s.Name() != "doc" || s.Manager() == nil {
		t.Error("store identity accessors broken")
	}
}

func TestInsertGetRules(t *testing.T) {
	c := newTestStore().Collection("orders")
	if err := c.Insert(nil, orderDoc("o1", 1, 10.5, "a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(nil, orderDoc("o1", 2, 3, "b")); err == nil {
		t.Error("duplicate _id should fail")
	}
	if err := c.Insert(nil, mmvalue.Int(5)); err == nil {
		t.Error("non-object should fail")
	}
	if err := c.Insert(nil, mmvalue.ObjectOf("x", 1)); err == nil {
		t.Error("missing _id should fail")
	}
	if err := c.Insert(nil, mmvalue.ObjectOf("_id", 5)); err == nil {
		t.Error("non-string _id should fail")
	}
	if err := c.Insert(nil, mmvalue.ObjectOf("_id", "")); err == nil {
		t.Error("empty _id should fail")
	}
	doc, ok := c.Get(nil, "o1")
	if !ok {
		t.Fatal("Get failed")
	}
	if v, _ := mmvalue.ParsePath("ship.city").Lookup(doc); !mmvalue.Equal(v, mmvalue.String("hki")) {
		t.Error("nested value lost")
	}
	if _, ok := c.Get(nil, "zz"); ok {
		t.Error("phantom doc")
	}
}

func TestUpdateAndPathOps(t *testing.T) {
	c := newTestStore().Collection("orders")
	c.Insert(nil, orderDoc("o1", 1, 10, "a"))
	if err := c.SetPath(nil, "o1", "status", mmvalue.String("shipped")); err != nil {
		t.Fatal(err)
	}
	doc, _ := c.Get(nil, "o1")
	if v, _ := mmvalue.ParsePath("status").Lookup(doc); !mmvalue.Equal(v, mmvalue.String("shipped")) {
		t.Error("SetPath lost")
	}
	if err := c.SetPath(nil, "o1", "ship.tracking.code", mmvalue.String("X1")); err != nil {
		t.Fatal(err)
	}
	doc, _ = c.Get(nil, "o1")
	if v, _ := mmvalue.ParsePath("ship.tracking.code").Lookup(doc); !mmvalue.Equal(v, mmvalue.String("X1")) {
		t.Error("deep SetPath lost")
	}
	if err := c.UnsetPath(nil, "o1", "ship.days"); err != nil {
		t.Fatal(err)
	}
	doc, _ = c.Get(nil, "o1")
	if _, ok := mmvalue.ParsePath("ship.days").Lookup(doc); ok {
		t.Error("UnsetPath failed")
	}
	// _id change rejected.
	err := c.Update(nil, "o1", func(d mmvalue.Value) (mmvalue.Value, error) {
		d.MustObject().Set("_id", mmvalue.String("o9"))
		return d, nil
	})
	if err == nil {
		t.Error("changing _id should fail")
	}
	if err := c.Update(nil, "nope", func(d mmvalue.Value) (mmvalue.Value, error) { return d, nil }); err == nil {
		t.Error("update missing doc should fail")
	}
}

func TestDeleteAndCount(t *testing.T) {
	c := newTestStore().Collection("orders")
	for i := 0; i < 5; i++ {
		c.Insert(nil, orderDoc(fmt.Sprintf("o%d", i), int64(i), float64(i)))
	}
	if c.Count() != 5 {
		t.Fatalf("Count = %d", c.Count())
	}
	c.Delete(nil, "o2")
	if c.Count() != 4 {
		t.Errorf("Count after delete = %d", c.Count())
	}
	if err := c.Delete(nil, "missing"); err != nil {
		t.Errorf("delete missing: %v", err)
	}
}

func TestFilters(t *testing.T) {
	c := newTestStore().Collection("orders")
	c.Insert(nil, orderDoc("o1", 1, 10, "apple", "pear"))
	c.Insert(nil, orderDoc("o2", 2, 50, "apple"))
	c.Insert(nil, orderDoc("o3", 1, 99, "fig"))
	cases := []struct {
		f    Filter
		want int
	}{
		{Eq("customer_id", 1), 2},
		{Ne("customer_id", 1), 1},
		{Lt("total", 50), 1},
		{Le("total", 50), 2},
		{Gt("total", 10), 2},
		{Ge("total", 10), 3},
		{Exists("ship.city", true), 3},
		{Exists("bogus", true), 0},
		{Exists("bogus", false), 3},
		{Contains("items.0.sku", "x"), 0}, // not an array
		{All(Eq("customer_id", 1), Gt("total", 50)), 1},
		{Any(Eq("_id", "o1"), Eq("_id", "o3")), 2},
		{Everything(), 3},
		{Eq("missing", nil), 3}, // missing path matches eq-null
		{Ne("missing", "x"), 3}, // missing path matches ne-non-null
		{Ne("missing", nil), 0}, // but not ne-null
		{Lt("missing", 100), 0}, // range on missing never matches
		{Eq("ship.city", "hki"), 3},
	}
	for _, tc := range cases {
		if got := c.CountWhere(nil, tc.f); got != tc.want {
			t.Errorf("%s matched %d, want %d", tc.f, got, tc.want)
		}
	}
	// Array contains on a real array path.
	c.Insert(nil, mmvalue.ObjectOf("_id", "o4", "tags", []any{"red", "blue"}))
	if got := c.CountWhere(nil, Contains("tags", "red")); got != 1 {
		t.Errorf("Contains matched %d", got)
	}
	if got := c.CountWhere(nil, Contains("tags", "green")); got != 0 {
		t.Errorf("Contains(green) matched %d", got)
	}
	// Nil filter counts all.
	if got := c.CountWhere(nil, nil); got != 4 {
		t.Errorf("nil filter = %d", got)
	}
	// Filter strings render.
	s := All(Eq("a", 1), Any(Lt("b", 2), Contains("c", "x")), Exists("d", true)).String()
	for _, frag := range []string{"$and", "$or", "$lt", "$contains", "$exists"} {
		if !strings.Contains(s, frag) {
			t.Errorf("filter string %q missing %q", s, frag)
		}
	}
}

func TestFindSortLimitProjection(t *testing.T) {
	c := newTestStore().Collection("orders")
	for i := 1; i <= 6; i++ {
		c.Insert(nil, orderDoc(fmt.Sprintf("o%d", i), int64(i%2), float64(i*10)))
	}
	docs := c.Find(nil, Everything(), &FindOptions{SortPath: "total", Descending: true, Limit: 2})
	if len(docs) != 2 {
		t.Fatalf("limit got %d", len(docs))
	}
	if v, _ := mmvalue.ParsePath("total").Lookup(docs[0]); !mmvalue.Equal(v, mmvalue.Float(60)) {
		t.Errorf("sort desc first = %s", v)
	}
	docs = c.Find(nil, Eq("customer_id", 1), &FindOptions{Projection: []string{"total", "ship.city"}})
	if len(docs) != 3 {
		t.Fatalf("projection find got %d", len(docs))
	}
	o := docs[0].MustObject()
	if _, ok := o.Get("_id"); !ok {
		t.Error("projection must keep _id")
	}
	if _, ok := o.Get("status"); ok {
		t.Error("projection leaked field")
	}
	if v, found := mmvalue.ParsePath("ship.city").Lookup(docs[0]); !found || !mmvalue.Equal(v, mmvalue.String("hki")) {
		t.Error("nested projection missing")
	}
	// FindOne.
	if _, ok := c.FindOne(nil, Eq("_id", "o3")); !ok {
		t.Error("FindOne missed")
	}
	if _, ok := c.FindOne(nil, Eq("_id", "zz")); ok {
		t.Error("FindOne phantom")
	}
	// Find results are clones.
	docs = c.Find(nil, Eq("_id", "o1"), nil)
	docs[0].MustObject().Set("total", mmvalue.Float(-1))
	re, _ := c.Get(nil, "o1")
	if v, _ := mmvalue.ParsePath("total").Lookup(re); mmvalue.Equal(v, mmvalue.Float(-1)) {
		t.Error("Find result mutation leaked")
	}
}

func TestPathIndexUseAndCorrectness(t *testing.T) {
	c := newTestStore().Collection("orders")
	for i := 0; i < 50; i++ {
		c.Insert(nil, orderDoc(fmt.Sprintf("o%02d", i), int64(i%5), float64(i)))
	}
	if err := c.CreateIndex("customer_id"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex("customer_id"); err == nil {
		t.Error("duplicate index should fail")
	}
	if !c.HasIndex("customer_id") || c.HasIndex("zz") {
		t.Error("HasIndex wrong")
	}
	docs := c.Find(nil, Eq("customer_id", 3), nil)
	if len(docs) != 10 {
		t.Fatalf("index find got %d, want 10", len(docs))
	}
	// Update moves doc between buckets; stale entries must be filtered.
	c.SetPath(nil, "o03", "customer_id", mmvalue.Int(4))
	if got := len(c.Find(nil, Eq("customer_id", 3), nil)); got != 9 {
		t.Errorf("after move, bucket 3 = %d, want 9", got)
	}
	if got := len(c.Find(nil, Eq("customer_id", 4), nil)); got != 11 {
		t.Errorf("after move, bucket 4 = %d, want 11", got)
	}
	if got := c.CountWhere(nil, Eq("customer_id", 4)); got != 11 {
		t.Errorf("CountWhere via index = %d, want 11", got)
	}
}

func TestSnapshotReadsDuringConcurrentWrites(t *testing.T) {
	s := newTestStore()
	c := s.Collection("orders")
	c.Insert(nil, orderDoc("o1", 1, 10))
	reader := s.Manager().Begin()
	c.SetPath(nil, "o1", "total", mmvalue.Float(999))
	c.Insert(nil, orderDoc("o2", 2, 20))
	// Snapshot still sees old world.
	doc, _ := c.Get(reader, "o1")
	if v, _ := mmvalue.ParsePath("total").Lookup(doc); !mmvalue.Equal(v, mmvalue.Float(10)) {
		t.Errorf("snapshot total = %s", v)
	}
	if _, ok := c.Get(reader, "o2"); ok {
		t.Error("snapshot sees future insert")
	}
	if n := c.CountWhere(reader, nil); n != 1 {
		t.Errorf("snapshot count = %d", n)
	}
	reader.Abort()
}

func TestCrossCollectionTransaction(t *testing.T) {
	s := newTestStore()
	orders := s.Collection("orders")
	products := s.Collection("products")
	products.Insert(nil, mmvalue.ObjectOf("_id", "p1", "stock", 5))
	err := s.Manager().RunWith(3, func(tx *txn.Tx) error {
		if err := orders.Insert(tx, orderDoc("o1", 1, 10, "p1")); err != nil {
			return err
		}
		return products.Update(tx, "p1", func(d mmvalue.Value) (mmvalue.Value, error) {
			o := d.MustObject()
			st, _ := o.Get("stock")
			o.Set("stock", mmvalue.Int(st.MustInt()-1))
			return d, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := products.Get(nil, "p1")
	if v, _ := p.MustObject().Get("stock"); !mmvalue.Equal(v, mmvalue.Int(4)) {
		t.Error("cross-collection txn lost update")
	}
	// Failing txn rolls both back.
	err = s.Manager().RunWith(0, func(tx *txn.Tx) error {
		orders.Insert(tx, orderDoc("o2", 1, 10, "p1"))
		products.Update(tx, "p1", func(d mmvalue.Value) (mmvalue.Value, error) {
			d.MustObject().Set("stock", mmvalue.Int(0))
			return d, nil
		})
		return fmt.Errorf("business rule failed")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if _, ok := orders.Get(nil, "o2"); ok {
		t.Error("aborted insert leaked")
	}
	p, _ = products.Get(nil, "p1")
	if v, _ := p.MustObject().Get("stock"); !mmvalue.Equal(v, mmvalue.Int(4)) {
		t.Error("aborted update leaked")
	}
}

func TestCompact(t *testing.T) {
	s := newTestStore()
	c := s.Collection("orders")
	c.CreateIndex("customer_id")
	c.Insert(nil, orderDoc("o1", 1, 10))
	for i := 0; i < 5; i++ {
		c.SetPath(nil, "o1", "total", mmvalue.Float(float64(i)))
	}
	c.Insert(nil, orderDoc("o2", 2, 20))
	c.Delete(nil, "o2")
	// Published()+1, not Oracle().Current()+1: the oracle runs ahead of
	// the watermark while commits are stamping, and a horizon past the
	// watermark can drop versions still visible to published snapshots.
	horizon := s.Manager().Published() + 1
	if dropped := c.Compact(horizon); dropped < 5 {
		t.Errorf("dropped = %d", dropped)
	}
	if _, ok := c.Get(nil, "o1"); !ok {
		t.Error("live doc lost in compact")
	}
	if docs := c.Find(nil, Eq("customer_id", 2), nil); len(docs) != 0 {
		t.Error("dead doc reachable after compact")
	}
}

func TestConcurrentInsertFind(t *testing.T) {
	s := newTestStore()
	c := s.Collection("orders")
	c.CreateIndex("customer_id")
	var wg sync.WaitGroup
	const writers, per = 4, 60
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("w%d-o%02d", w, i)
				if err := c.Insert(nil, orderDoc(id, int64(i%7), float64(i))); err != nil {
					t.Errorf("insert: %v", err)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.Find(nil, Eq("customer_id", 3), nil)
		}
	}()
	wg.Wait()
	if c.Count() != writers*per {
		t.Fatalf("Count = %d", c.Count())
	}
}

func BenchmarkInsert(b *testing.B) {
	c := NewStore("b", txn.NewManager()).Collection("orders")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Insert(nil, orderDoc(fmt.Sprintf("o%09d", i), int64(i%100), float64(i)))
	}
}

func BenchmarkFindIndexed(b *testing.B) {
	c := NewStore("b", txn.NewManager()).Collection("orders")
	for i := 0; i < 5000; i++ {
		c.Insert(nil, orderDoc(fmt.Sprintf("o%06d", i), int64(i%50), float64(i)))
	}
	c.CreateIndex("customer_id")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Find(nil, Eq("customer_id", int64(i%50)), nil)
	}
}
