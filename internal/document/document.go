// Package document implements the JSON document data model of the
// UDBMS benchmark: schemaless collections of mmvalue objects with
// path-predicate queries, projections, partial updates and advisory
// path indexes.
//
// In the Figure-1 dataset this store holds Orders and Product
// documents.
package document

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"udbench/internal/mmvalue"
	"udbench/internal/ordmap"
	"udbench/internal/txn"
	"udbench/internal/wal"
)

// IDField is the reserved document identifier field.
const IDField = "_id"

// Store is a set of named collections sharing one transaction manager.
type Store struct {
	name string
	mgr  *txn.Manager

	mu    sync.RWMutex
	colls map[string]*Collection
}

// NewStore creates an empty document store named name on mgr.
func NewStore(name string, mgr *txn.Manager) *Store {
	return &Store{name: name, mgr: mgr, colls: make(map[string]*Collection)}
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// Manager returns the transaction manager.
func (s *Store) Manager() *txn.Manager { return s.mgr }

// Collection returns the named collection, creating it on first use
// ("data first, schema later or never").
func (s *Store) Collection(name string) *Collection {
	s.mu.RLock()
	c := s.colls[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.colls[name]; c == nil {
		c = &Collection{
			store:   s,
			name:    name,
			docs:    ordmap.New[*txn.Chain[mmvalue.Value]](0xd0c5),
			indexes: make(map[string]*pathIndex),
		}
		s.colls[name] = c
	}
	return c
}

// CollectionNames lists existing collections in sorted order.
func (s *Store) CollectionNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.colls))
	for n := range s.colls {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Collection is a schemaless set of documents keyed by their _id
// string.
type Collection struct {
	store *Store
	name  string
	docs  *ordmap.Map[*txn.Chain[mmvalue.Value]]

	// version counts committed writes: every commit hook that stamps a
	// doc version bumps it before stamping, so the counter changes no
	// later than the moment new data becomes visible to readers.
	version atomic.Uint64

	idxMu   sync.RWMutex
	indexes map[string]*pathIndex
}

// pathIndex maps normalized leaf values at one path to doc ids.
// Like relational indexes it is advisory: entries accumulate at commit
// time and queries re-verify against the visible document.
type pathIndex struct {
	pp      mmvalue.Path // parsed once at CreateIndex
	mu      sync.RWMutex
	buckets map[string]map[string]struct{}
}

func (ix *pathIndex) add(valKey, id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	b := ix.buckets[valKey]
	if b == nil {
		b = make(map[string]struct{})
		ix.buckets[valKey] = b
	}
	b[id] = struct{}{}
}

func (ix *pathIndex) candidates(valKey string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.buckets[valKey]))
	for id := range ix.buckets[valKey] {
		out = append(out, id)
	}
	return out
}

func (ix *pathIndex) drop(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for vk, b := range ix.buckets {
		delete(b, id)
		if len(b) == 0 {
			delete(ix.buckets, vk)
		}
	}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Manager returns the transaction manager the collection is attached to.
func (c *Collection) Manager() *txn.Manager { return c.store.mgr }

// Version counts committed writes to the collection. It is bumped
// inside the commit hook, immediately before the corresponding doc
// version is stamped visible, so a snapshot-derived structure (e.g.
// the executor's join-build cache) tagged with a Version observation
// stays valid as long as the value is unchanged.
func (c *Collection) Version() uint64 { return c.version.Load() }

func (c *Collection) resource(id string) string {
	return c.store.name + "/" + c.name + "/" + id
}

// chainOf returns the document's version chain, creating it (with its
// interned lock key) on first use so the lock path never rebuilds the
// resource string. The slot stays in the map even if the insert later
// fails (duplicate id, deadlock abort): it may already be shared with
// a concurrent transaction holding the record lock, so evicting it
// here would orphan that transaction's writes. An empty chain reads as
// "not found" everywhere, matching the store's existing behavior for
// rolled-back inserts.
func (c *Collection) chainOf(id string) *txn.Chain[mmvalue.Value] {
	chain, _ := c.docs.GetOrInsert(id, func() *txn.Chain[mmvalue.Value] {
		return &txn.Chain[mmvalue.Value]{Res: txn.NewResourceKey(c.resource(id))}
	})
	return chain
}

// lockDoc exclusively locks id's record, preferring the interned key.
// When the record does not exist it locks a fresh key and re-checks —
// the id may have been inserted by a transaction the lock waited on.
func (c *Collection) lockDoc(tx *txn.Tx, id string) (*txn.Chain[mmvalue.Value], bool, error) {
	if chain, ok := c.docs.Get(id); ok {
		return chain, true, tx.LockExclusiveKey(chain.Res)
	}
	if err := tx.LockExclusive(c.resource(id)); err != nil {
		return nil, false, err
	}
	chain, ok := c.docs.Get(id)
	return chain, ok, nil
}

func (c *Collection) run(tx *txn.Tx, fn func(*txn.Tx) error) error {
	if tx != nil {
		return fn(tx)
	}
	return c.store.mgr.RunWith(3, fn)
}

// valKey normalizes a leaf value for indexing, consistent with
// mmvalue.Equal for scalars.
func valKey(v mmvalue.Value) string { return v.Key() }

// CreateIndex adds an advisory equality index on the dotted path and
// backfills it from latest committed documents.
func (c *Collection) CreateIndex(path string) error {
	c.idxMu.Lock()
	if _, exists := c.indexes[path]; exists {
		c.idxMu.Unlock()
		return fmt.Errorf("document %s: index on %q already exists", c.name, path)
	}
	ix := &pathIndex{pp: mmvalue.ParsePath(path), buckets: make(map[string]map[string]struct{})}
	c.indexes[path] = ix
	c.idxMu.Unlock()
	c.docs.Ascend("", "", func(id string, chain *txn.Chain[mmvalue.Value]) bool {
		if doc, live := chain.ReadLatest(); live {
			if v, ok := ix.pp.Lookup(doc); ok {
				ix.add(valKey(v), id)
			}
		}
		return true
	})
	// DDL is durable too: log the index creation through an auto-commit
	// transaction so recovery rebuilds it before replaying documents.
	if c.store.mgr.CommitLogAttached() {
		return c.store.mgr.RunWith(3, func(tx *txn.Tx) error {
			if tx.Logging() {
				tx.LogOp(wal.NewOp(wal.OpDocCreateIndex).String(c.name).String(path).Build())
			}
			return nil
		})
	}
	return nil
}

// IndexPaths lists the dotted paths with an index, in sorted order
// (used by snapshot encoding).
func (c *Collection) IndexPaths() []string {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	paths := make([]string, 0, len(c.indexes))
	for p := range c.indexes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// UsesIndex reports whether Find/Stream would serve the filter from a
// path index rather than a collection scan.
func (c *Collection) UsesIndex(f Filter) bool {
	if f == nil {
		return false
	}
	path, _, ok := f.equalityOn()
	return ok && c.HasIndex(path)
}

// HasIndex reports whether an index exists on the dotted path.
func (c *Collection) HasIndex(path string) bool {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	_, ok := c.indexes[path]
	return ok
}

func (c *Collection) index(path string) *pathIndex {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	return c.indexes[path]
}

func (c *Collection) indexDoc(id string, doc mmvalue.Value) {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	for _, ix := range c.indexes {
		if v, ok := ix.pp.Lookup(doc); ok {
			ix.add(valKey(v), id)
		}
	}
}

// Insert stores doc under its _id field (which must be a non-empty
// string). Inserting an existing id fails.
func (c *Collection) Insert(tx *txn.Tx, doc mmvalue.Value) error {
	obj, ok := doc.AsObject()
	if !ok {
		return fmt.Errorf("document %s: document must be an object", c.name)
	}
	idv, ok := obj.Get(IDField)
	if !ok {
		return fmt.Errorf("document %s: missing %s", c.name, IDField)
	}
	id, ok := idv.AsString()
	if !ok || id == "" {
		return fmt.Errorf("document %s: %s must be a non-empty string", c.name, IDField)
	}
	return c.run(tx, func(tx *txn.Tx) error {
		chain := c.chainOf(id)
		if err := tx.LockExclusiveKey(chain.Res); err != nil {
			return err
		}
		if _, exists := chain.Read(c.store.mgr.Oracle().Current(), tx.ID()); exists {
			return fmt.Errorf("document %s: duplicate %s %q", c.name, IDField, id)
		}
		stored := doc.Clone()
		chain.Write(tx.ID(), stored, false)
		tx.OnUndo(func() { chain.Rollback(tx.ID()) })
		tx.OnCommit(func(ts txn.TS) {
			c.version.Add(1)
			chain.CommitStamp(tx.ID(), ts)
			c.indexDoc(id, stored)
		})
		if tx.Logging() {
			tx.LogOp(wal.NewOp(wal.OpDocPut).String(c.name).String(id).
				Bytes(mmvalue.AppendBinary(nil, stored)).Build())
		}
		return nil
	})
}

// ApplyPut is the replay path: it upserts doc under its _id without the
// duplicate-id check, so recovery can reapply a logged put whether or
// not a snapshot already holds the document.
func (c *Collection) ApplyPut(tx *txn.Tx, doc mmvalue.Value) error {
	obj, ok := doc.AsObject()
	if !ok {
		return fmt.Errorf("document %s: document must be an object", c.name)
	}
	idv, _ := obj.Get(IDField)
	id, ok := idv.AsString()
	if !ok || id == "" {
		return fmt.Errorf("document %s: %s must be a non-empty string", c.name, IDField)
	}
	return c.run(tx, func(tx *txn.Tx) error {
		chain := c.chainOf(id)
		if err := tx.LockExclusiveKey(chain.Res); err != nil {
			return err
		}
		stored := doc.Clone()
		chain.Write(tx.ID(), stored, false)
		tx.OnUndo(func() { chain.Rollback(tx.ID()) })
		tx.OnCommit(func(ts txn.TS) {
			c.version.Add(1)
			chain.CommitStamp(tx.ID(), ts)
			c.indexDoc(id, stored)
		})
		if tx.Logging() {
			tx.LogOp(wal.NewOp(wal.OpDocPut).String(c.name).String(id).
				Bytes(mmvalue.AppendBinary(nil, stored)).Build())
		}
		return nil
	})
}

// Get returns the document with the given id as visible to tx. The
// returned document is shared; Clone before mutating.
func (c *Collection) Get(tx *txn.Tx, id string) (mmvalue.Value, bool) {
	chain, ok := c.docs.Get(id)
	if !ok {
		return mmvalue.Null, false
	}
	if tx == nil {
		return chain.ReadLatest()
	}
	return chain.Read(tx.BeginTS(), tx.ID())
}

// GetShared is the serializable read mode: it takes a shared lock on
// the document (held to commit) and returns the latest committed
// value, which the lock keeps stable until tx ends. A transaction is
// required. See txn.SharedRead for the protocol.
func (c *Collection) GetShared(tx *txn.Tx, id string) (mmvalue.Value, bool, error) {
	if tx == nil {
		return mmvalue.Null, false, fmt.Errorf("document %s/%s: GetShared requires a transaction", c.store.name, c.name)
	}
	return txn.SharedRead(tx, c.store.mgr,
		func() string { return c.resource(id) },
		func() (*txn.Chain[mmvalue.Value], bool) { return c.docs.Get(id) })
}

// Update applies fn to a clone of the current document and stores the
// result; fn must keep the _id unchanged.
func (c *Collection) Update(tx *txn.Tx, id string, fn func(doc mmvalue.Value) (mmvalue.Value, error)) error {
	return c.run(tx, func(tx *txn.Tx) error {
		chain, ok, err := c.lockDoc(tx, id)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("document %s: no document %q", c.name, id)
		}
		cur, live := chain.Read(c.store.mgr.Oracle().Current(), tx.ID())
		if !live {
			return fmt.Errorf("document %s: no document %q", c.name, id)
		}
		next, err := fn(cur.Clone())
		if err != nil {
			return err
		}
		no, ok := next.AsObject()
		if !ok {
			return fmt.Errorf("document %s: updated document must be an object", c.name)
		}
		if nid, _ := no.Get(IDField); !mmvalue.Equal(nid, mmvalue.String(id)) {
			return fmt.Errorf("document %s: update may not change %s", c.name, IDField)
		}
		chain.Write(tx.ID(), next, false)
		tx.OnUndo(func() { chain.Rollback(tx.ID()) })
		tx.OnCommit(func(ts txn.TS) {
			c.version.Add(1)
			chain.CommitStamp(tx.ID(), ts)
			c.indexDoc(id, next)
		})
		if tx.Logging() {
			tx.LogOp(wal.NewOp(wal.OpDocPut).String(c.name).String(id).
				Bytes(mmvalue.AppendBinary(nil, next)).Build())
		}
		return nil
	})
}

// SetPath sets a single dotted path inside the document to value
// (a convenience wrapper over Update).
func (c *Collection) SetPath(tx *txn.Tx, id, path string, value mmvalue.Value) error {
	return c.Update(tx, id, func(doc mmvalue.Value) (mmvalue.Value, error) {
		return mmvalue.ParsePath(path).Set(doc, value)
	})
}

// UnsetPath removes a dotted path from the document.
func (c *Collection) UnsetPath(tx *txn.Tx, id, path string) error {
	return c.Update(tx, id, func(doc mmvalue.Value) (mmvalue.Value, error) {
		mmvalue.ParsePath(path).Delete(doc)
		return doc, nil
	})
}

// Delete tombstones the document; deleting a missing id is a no-op.
func (c *Collection) Delete(tx *txn.Tx, id string) error {
	return c.run(tx, func(tx *txn.Tx) error {
		chain, ok, err := c.lockDoc(tx, id)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		chain.Write(tx.ID(), mmvalue.Null, true)
		tx.OnUndo(func() { chain.Rollback(tx.ID()) })
		tx.OnCommit(func(ts txn.TS) {
			c.version.Add(1)
			chain.CommitStamp(tx.ID(), ts)
		})
		if tx.Logging() {
			tx.LogOp(wal.NewOp(wal.OpDocDelete).String(c.name).String(id).Build())
		}
		return nil
	})
}

// scan iterates live documents visible to tx in id order.
func (c *Collection) scan(tx *txn.Tx, fn func(id string, doc mmvalue.Value) bool) {
	c.scanRange(tx, "", "", fn)
}

// scanRange iterates live documents with from <= id < to (empty to =
// unbounded) visible to tx, in id order.
func (c *Collection) scanRange(tx *txn.Tx, from, to string, fn func(id string, doc mmvalue.Value) bool) {
	c.docs.Ascend(from, to, func(id string, chain *txn.Chain[mmvalue.Value]) bool {
		var doc mmvalue.Value
		var ok bool
		if tx == nil {
			doc, ok = chain.ReadLatest()
		} else {
			doc, ok = chain.Read(tx.BeginTS(), tx.ID())
		}
		if !ok {
			return true
		}
		return fn(id, doc)
	})
}

func (c *Collection) readVisible(tx *txn.Tx, id string) (mmvalue.Value, bool) {
	chain, ok := c.docs.Get(id)
	if !ok {
		return mmvalue.Null, false
	}
	if tx == nil {
		return chain.ReadLatest()
	}
	return chain.Read(tx.BeginTS(), tx.ID())
}

// HasCollection reports whether a collection of that name already
// exists, without creating it.
func (s *Store) HasCollection(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.colls[name]
	return ok
}

// Len returns the number of document slots in the collection, including
// tombstoned documents not yet compacted. It is a cheap upper bound on
// the live document count, intended for executor sizing decisions.
func (c *Collection) Len() int { return c.docs.Len() }

// Stream calls fn for every live document visible to tx that matches
// filter (nil = all), in id order, stopping early when fn returns
// false. Unlike Find, the documents are NOT cloned: they are shared
// with the store and must not be mutated. When the filter pins an
// indexed path the index is used instead of a full scan.
func (c *Collection) Stream(tx *txn.Tx, filter Filter, fn func(doc mmvalue.Value) bool) {
	if filter == nil {
		filter = Everything()
	}
	if path, lit, ok := filter.equalityOn(); ok && c.HasIndex(path) {
		ix := c.index(path)
		ids := ix.candidates(valKey(lit))
		sort.Strings(ids)
		for _, id := range ids {
			doc, live := c.readVisible(tx, id)
			if !live || !filter.Match(doc) {
				continue
			}
			if !fn(doc) {
				return
			}
		}
		return
	}
	c.scan(tx, func(_ string, doc mmvalue.Value) bool {
		if !filter.Match(doc) {
			return true
		}
		return fn(doc)
	})
}

// StreamBatch is the vectorized form of Stream: matching documents are
// gathered into buf and fn is called once per full buffer (batch size
// = cap(buf)) plus once for the final remainder, amortizing the
// per-document callback dispatch of Stream to one call per batch. The
// delivered slice is reused between calls and its documents are shared
// with the store: consume (or copy) within the callback, do not retain
// or mutate. fn returning false stops the scan. Index routes delegate
// to Stream and still batch.
func (c *Collection) StreamBatch(tx *txn.Tx, filter Filter, buf []mmvalue.Value, fn func(docs []mmvalue.Value) bool) {
	if cap(buf) == 0 {
		buf = make([]mmvalue.Value, 0, 1024)
	}
	buf = buf[:0]
	stopped := false
	c.Stream(tx, filter, func(doc mmvalue.Value) bool {
		buf = append(buf, doc)
		if len(buf) == cap(buf) {
			if !fn(buf) {
				stopped = true
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if !stopped && len(buf) > 0 {
		fn(buf)
	}
}

// StreamRangeBatch is the vectorized form of StreamRange, with the
// same batched-callback contract as StreamBatch. It always scans the
// id range directly off store memory — the morsel primitive for
// parallel executors.
func (c *Collection) StreamRangeBatch(tx *txn.Tx, from, to string, filter Filter, buf []mmvalue.Value, fn func(docs []mmvalue.Value) bool) {
	if cap(buf) == 0 {
		buf = make([]mmvalue.Value, 0, 1024)
	}
	buf = buf[:0]
	if filter == nil {
		filter = Everything()
	}
	stopped := false
	c.scanRange(tx, from, to, func(_ string, doc mmvalue.Value) bool {
		if !filter.Match(doc) {
			return true
		}
		buf = append(buf, doc)
		if len(buf) == cap(buf) {
			if !fn(buf) {
				stopped = true
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if !stopped && len(buf) > 0 {
		fn(buf)
	}
}

// StreamRange is Stream restricted to ids in [from, to) (empty to =
// unbounded) and always scans: it is the partition primitive for
// parallel executors, so it ignores indexes. Documents are shared, not
// cloned.
func (c *Collection) StreamRange(tx *txn.Tx, from, to string, filter Filter, fn func(doc mmvalue.Value) bool) {
	if filter == nil {
		filter = Everything()
	}
	c.scanRange(tx, from, to, func(_ string, doc mmvalue.Value) bool {
		if !filter.Match(doc) {
			return true
		}
		return fn(doc)
	})
}

// SplitPoints returns boundary ids that cut the collection into up to n
// contiguous ranges of near-equal size for StreamRange.
func (c *Collection) SplitPoints(n int) []string { return c.docs.SplitPoints(n) }

// Count returns the number of live documents at latest-committed state.
func (c *Collection) Count() int {
	n := 0
	c.scan(nil, func(string, mmvalue.Value) bool { n++; return true })
	return n
}

// Compact garbage-collects old versions, removes dead documents and
// their index entries. Returns versions dropped.
func (c *Collection) Compact(horizon txn.TS) int {
	dropped := 0
	var dead []string
	c.docs.Ascend("", "", func(id string, chain *txn.Chain[mmvalue.Value]) bool {
		dropped += chain.GC(horizon)
		if _, live := chain.ReadLatest(); !live {
			if ts := chain.LatestCommitTS(); ts != 0 && ts < horizon {
				dead = append(dead, id)
			}
		}
		return true
	})
	c.idxMu.RLock()
	for _, ix := range c.indexes {
		for _, id := range dead {
			ix.drop(id)
		}
	}
	c.idxMu.RUnlock()
	for _, id := range dead {
		c.docs.Remove(id)
	}
	return dropped
}
