package document

import (
	"fmt"
	"sort"
	"strings"

	"udbench/internal/mmvalue"
	"udbench/internal/txn"
)

// Filter is a predicate over a document, addressed by dotted paths.
type Filter interface {
	// Match reports whether the document satisfies the filter.
	Match(doc mmvalue.Value) bool
	// String renders a Mongo-ish form for diagnostics.
	String() string
	// equalityOn returns (path, literal, true) when the filter pins
	// path == literal, enabling index lookups.
	equalityOn() (string, mmvalue.Value, bool)
}

type cmpFilter struct {
	path string
	pp   mmvalue.Path // precompiled once at construction, reused per Match
	op   string       // "eq","ne","lt","le","gt","ge"
	lit  mmvalue.Value
}

func newCmpFilter(path, op string, value any) cmpFilter {
	return cmpFilter{path: path, pp: mmvalue.ParsePath(path), op: op, lit: mmvalue.From(value)}
}

func (f cmpFilter) Match(doc mmvalue.Value) bool {
	v, ok := f.pp.Lookup(doc)
	if !ok {
		// Missing path: only $ne and eq-null match.
		switch f.op {
		case "ne":
			return !f.lit.IsNull()
		case "eq":
			return f.lit.IsNull()
		default:
			return false
		}
	}
	c := mmvalue.Compare(v, f.lit)
	switch f.op {
	case "eq":
		return c == 0
	case "ne":
		return c != 0
	case "lt":
		return c < 0
	case "le":
		return c <= 0
	case "gt":
		return c > 0
	case "ge":
		return c >= 0
	}
	return false
}

func (f cmpFilter) String() string {
	return fmt.Sprintf("{%s: {$%s: %s}}", f.path, f.op, f.lit)
}

func (f cmpFilter) equalityOn() (string, mmvalue.Value, bool) {
	if f.op == "eq" && !f.lit.IsNull() {
		return f.path, f.lit, true
	}
	return "", mmvalue.Null, false
}

// Eq matches path == value.
func Eq(path string, value any) Filter { return newCmpFilter(path, "eq", value) }

// Ne matches path != value (missing paths match unless value is null).
func Ne(path string, value any) Filter { return newCmpFilter(path, "ne", value) }

// Lt matches path < value.
func Lt(path string, value any) Filter { return newCmpFilter(path, "lt", value) }

// Le matches path <= value.
func Le(path string, value any) Filter { return newCmpFilter(path, "le", value) }

// Gt matches path > value.
func Gt(path string, value any) Filter { return newCmpFilter(path, "gt", value) }

// Ge matches path >= value.
func Ge(path string, value any) Filter { return newCmpFilter(path, "ge", value) }

type existsFilter struct {
	path string
	pp   mmvalue.Path
	want bool
}

// Exists matches documents where the path is (or is not) present.
func Exists(path string, want bool) Filter {
	return existsFilter{path: path, pp: mmvalue.ParsePath(path), want: want}
}

func (f existsFilter) Match(doc mmvalue.Value) bool {
	_, ok := f.pp.Lookup(doc)
	return ok == f.want
}

func (f existsFilter) String() string {
	return fmt.Sprintf("{%s: {$exists: %v}}", f.path, f.want)
}

func (f existsFilter) equalityOn() (string, mmvalue.Value, bool) { return "", mmvalue.Null, false }

type containsFilter struct {
	path string
	pp   mmvalue.Path
	elem mmvalue.Value
}

// Contains matches documents whose array at path contains an element
// equal to value.
func Contains(path string, value any) Filter {
	return containsFilter{path: path, pp: mmvalue.ParsePath(path), elem: mmvalue.From(value)}
}

func (f containsFilter) Match(doc mmvalue.Value) bool {
	v, ok := f.pp.Lookup(doc)
	if !ok {
		return false
	}
	elems, ok := v.AsArray()
	if !ok {
		return false
	}
	for _, e := range elems {
		if mmvalue.Equal(e, f.elem) {
			return true
		}
	}
	return false
}

func (f containsFilter) String() string {
	return fmt.Sprintf("{%s: {$contains: %s}}", f.path, f.elem)
}

func (f containsFilter) equalityOn() (string, mmvalue.Value, bool) { return "", mmvalue.Null, false }

type andFilter struct{ fs []Filter }

// All matches documents satisfying every sub-filter.
func All(fs ...Filter) Filter { return andFilter{fs} }

func (f andFilter) Match(doc mmvalue.Value) bool {
	for _, sub := range f.fs {
		if !sub.Match(doc) {
			return false
		}
	}
	return true
}

func (f andFilter) String() string {
	parts := make([]string, len(f.fs))
	for i, s := range f.fs {
		parts[i] = s.String()
	}
	return "{$and: [" + strings.Join(parts, ", ") + "]}"
}

func (f andFilter) equalityOn() (string, mmvalue.Value, bool) {
	for _, sub := range f.fs {
		if p, v, ok := sub.equalityOn(); ok {
			return p, v, true
		}
	}
	return "", mmvalue.Null, false
}

type orFilter struct{ fs []Filter }

// Any matches documents satisfying at least one sub-filter.
func Any(fs ...Filter) Filter { return orFilter{fs} }

func (f orFilter) Match(doc mmvalue.Value) bool {
	for _, sub := range f.fs {
		if sub.Match(doc) {
			return true
		}
	}
	return false
}

func (f orFilter) String() string {
	parts := make([]string, len(f.fs))
	for i, s := range f.fs {
		parts[i] = s.String()
	}
	return "{$or: [" + strings.Join(parts, ", ") + "]}"
}

func (f orFilter) equalityOn() (string, mmvalue.Value, bool) { return "", mmvalue.Null, false }

// funcFilter adapts an arbitrary predicate function.
type funcFilter struct {
	fn   func(doc mmvalue.Value) bool
	desc string
}

// Func builds a filter from an arbitrary predicate; desc is used for
// diagnostics. Func filters always scan (no index support).
func Func(desc string, fn func(doc mmvalue.Value) bool) Filter {
	return funcFilter{fn: fn, desc: desc}
}

func (f funcFilter) Match(doc mmvalue.Value) bool { return f.fn(doc) }
func (f funcFilter) String() string               { return "{$func: " + f.desc + "}" }
func (f funcFilter) equalityOn() (string, mmvalue.Value, bool) {
	return "", mmvalue.Null, false
}

type trueFilter struct{}

// Everything matches every document.
func Everything() Filter { return trueFilter{} }

func (trueFilter) Match(mmvalue.Value) bool                  { return true }
func (trueFilter) String() string                            { return "{}" }
func (trueFilter) equalityOn() (string, mmvalue.Value, bool) { return "", mmvalue.Null, false }

// FindOptions tunes a Find call.
type FindOptions struct {
	// SortPath orders results by the value at this dotted path.
	SortPath string
	// Descending flips the sort order.
	Descending bool
	// Limit caps the number of results; <0 means unlimited.
	Limit int
	// Projection restricts result documents to these dotted paths
	// (plus _id).
	Projection []string
}

// Find returns clones of all documents visible to tx matching filter,
// honouring opts. A nil opts means no sort, no limit, full documents.
func (c *Collection) Find(tx *txn.Tx, filter Filter, opts *FindOptions) []mmvalue.Value {
	if filter == nil {
		filter = Everything()
	}
	limit := -1
	if opts != nil {
		limit = opts.Limit
		if opts.Limit == 0 {
			limit = -1
		}
	}
	var out []mmvalue.Value
	noSort := opts == nil || opts.SortPath == ""
	// Stream owns the access-path choice (index route vs scan).
	c.Stream(tx, filter, func(doc mmvalue.Value) bool {
		out = append(out, doc)
		// Early stop only when no post-sort is requested.
		return !(noSort && limit >= 0 && len(out) >= limit)
	})
	if opts != nil && opts.SortPath != "" {
		p := mmvalue.ParsePath(opts.SortPath)
		sort.SliceStable(out, func(i, j int) bool {
			a := p.LookupOr(out[i], mmvalue.Null)
			b := p.LookupOr(out[j], mmvalue.Null)
			if opts.Descending {
				return mmvalue.Compare(a, b) > 0
			}
			return mmvalue.Compare(a, b) < 0
		})
	}
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	res := make([]mmvalue.Value, len(out))
	var projPaths []mmvalue.Path
	if opts != nil && len(opts.Projection) > 0 {
		projPaths = make([]mmvalue.Path, len(opts.Projection))
		for i, p := range opts.Projection {
			projPaths[i] = mmvalue.ParsePath(p)
		}
	}
	for i, doc := range out {
		if projPaths != nil {
			res[i] = project(doc, projPaths)
		} else {
			res[i] = doc.Clone()
		}
	}
	return res
}

// FindOne returns the first matching document in id order.
func (c *Collection) FindOne(tx *txn.Tx, filter Filter) (mmvalue.Value, bool) {
	docs := c.Find(tx, filter, &FindOptions{Limit: 1})
	if len(docs) == 0 {
		return mmvalue.Null, false
	}
	return docs[0], true
}

// CountWhere returns the number of documents matching filter.
func (c *Collection) CountWhere(tx *txn.Tx, filter Filter) int {
	n := 0
	c.Stream(tx, filter, func(mmvalue.Value) bool {
		n++
		return true
	})
	return n
}

var idPath = mmvalue.ParsePath(IDField)

func project(doc mmvalue.Value, paths []mmvalue.Path) mmvalue.Value {
	o := mmvalue.NewObject()
	if id, ok := idPath.Lookup(doc); ok {
		o.Set(IDField, id)
	}
	root := mmvalue.FromObject(o)
	for _, pp := range paths {
		if v, ok := pp.Lookup(doc); ok {
			root, _ = pp.Set(root, v.Clone())
		}
	}
	return root
}
