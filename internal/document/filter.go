package document

import (
	"fmt"
	"sort"
	"strings"

	"udbench/internal/mmvalue"
	"udbench/internal/txn"
)

// Filter is a predicate over a document, addressed by dotted paths.
type Filter interface {
	// Match reports whether the document satisfies the filter.
	Match(doc mmvalue.Value) bool
	// String renders a Mongo-ish form for diagnostics.
	String() string
	// equalityOn returns (path, literal, true) when the filter pins
	// path == literal, enabling index lookups.
	equalityOn() (string, mmvalue.Value, bool)
}

type cmpFilter struct {
	path string
	op   string // "eq","ne","lt","le","gt","ge"
	lit  mmvalue.Value
}

func (f cmpFilter) Match(doc mmvalue.Value) bool {
	v, ok := mmvalue.ParsePath(f.path).Lookup(doc)
	if !ok {
		// Missing path: only $ne and eq-null match.
		switch f.op {
		case "ne":
			return !f.lit.IsNull()
		case "eq":
			return f.lit.IsNull()
		default:
			return false
		}
	}
	c := mmvalue.Compare(v, f.lit)
	switch f.op {
	case "eq":
		return c == 0
	case "ne":
		return c != 0
	case "lt":
		return c < 0
	case "le":
		return c <= 0
	case "gt":
		return c > 0
	case "ge":
		return c >= 0
	}
	return false
}

func (f cmpFilter) String() string {
	return fmt.Sprintf("{%s: {$%s: %s}}", f.path, f.op, f.lit)
}

func (f cmpFilter) equalityOn() (string, mmvalue.Value, bool) {
	if f.op == "eq" && !f.lit.IsNull() {
		return f.path, f.lit, true
	}
	return "", mmvalue.Null, false
}

// Eq matches path == value.
func Eq(path string, value any) Filter { return cmpFilter{path, "eq", mmvalue.From(value)} }

// Ne matches path != value (missing paths match unless value is null).
func Ne(path string, value any) Filter { return cmpFilter{path, "ne", mmvalue.From(value)} }

// Lt matches path < value.
func Lt(path string, value any) Filter { return cmpFilter{path, "lt", mmvalue.From(value)} }

// Le matches path <= value.
func Le(path string, value any) Filter { return cmpFilter{path, "le", mmvalue.From(value)} }

// Gt matches path > value.
func Gt(path string, value any) Filter { return cmpFilter{path, "gt", mmvalue.From(value)} }

// Ge matches path >= value.
func Ge(path string, value any) Filter { return cmpFilter{path, "ge", mmvalue.From(value)} }

type existsFilter struct {
	path string
	want bool
}

// Exists matches documents where the path is (or is not) present.
func Exists(path string, want bool) Filter { return existsFilter{path, want} }

func (f existsFilter) Match(doc mmvalue.Value) bool {
	_, ok := mmvalue.ParsePath(f.path).Lookup(doc)
	return ok == f.want
}

func (f existsFilter) String() string {
	return fmt.Sprintf("{%s: {$exists: %v}}", f.path, f.want)
}

func (f existsFilter) equalityOn() (string, mmvalue.Value, bool) { return "", mmvalue.Null, false }

type containsFilter struct {
	path string
	elem mmvalue.Value
}

// Contains matches documents whose array at path contains an element
// equal to value.
func Contains(path string, value any) Filter {
	return containsFilter{path, mmvalue.From(value)}
}

func (f containsFilter) Match(doc mmvalue.Value) bool {
	v, ok := mmvalue.ParsePath(f.path).Lookup(doc)
	if !ok {
		return false
	}
	elems, ok := v.AsArray()
	if !ok {
		return false
	}
	for _, e := range elems {
		if mmvalue.Equal(e, f.elem) {
			return true
		}
	}
	return false
}

func (f containsFilter) String() string {
	return fmt.Sprintf("{%s: {$contains: %s}}", f.path, f.elem)
}

func (f containsFilter) equalityOn() (string, mmvalue.Value, bool) { return "", mmvalue.Null, false }

type andFilter struct{ fs []Filter }

// All matches documents satisfying every sub-filter.
func All(fs ...Filter) Filter { return andFilter{fs} }

func (f andFilter) Match(doc mmvalue.Value) bool {
	for _, sub := range f.fs {
		if !sub.Match(doc) {
			return false
		}
	}
	return true
}

func (f andFilter) String() string {
	parts := make([]string, len(f.fs))
	for i, s := range f.fs {
		parts[i] = s.String()
	}
	return "{$and: [" + strings.Join(parts, ", ") + "]}"
}

func (f andFilter) equalityOn() (string, mmvalue.Value, bool) {
	for _, sub := range f.fs {
		if p, v, ok := sub.equalityOn(); ok {
			return p, v, true
		}
	}
	return "", mmvalue.Null, false
}

type orFilter struct{ fs []Filter }

// Any matches documents satisfying at least one sub-filter.
func Any(fs ...Filter) Filter { return orFilter{fs} }

func (f orFilter) Match(doc mmvalue.Value) bool {
	for _, sub := range f.fs {
		if sub.Match(doc) {
			return true
		}
	}
	return false
}

func (f orFilter) String() string {
	parts := make([]string, len(f.fs))
	for i, s := range f.fs {
		parts[i] = s.String()
	}
	return "{$or: [" + strings.Join(parts, ", ") + "]}"
}

func (f orFilter) equalityOn() (string, mmvalue.Value, bool) { return "", mmvalue.Null, false }

// funcFilter adapts an arbitrary predicate function.
type funcFilter struct {
	fn   func(doc mmvalue.Value) bool
	desc string
}

// Func builds a filter from an arbitrary predicate; desc is used for
// diagnostics. Func filters always scan (no index support).
func Func(desc string, fn func(doc mmvalue.Value) bool) Filter {
	return funcFilter{fn: fn, desc: desc}
}

func (f funcFilter) Match(doc mmvalue.Value) bool { return f.fn(doc) }
func (f funcFilter) String() string               { return "{$func: " + f.desc + "}" }
func (f funcFilter) equalityOn() (string, mmvalue.Value, bool) {
	return "", mmvalue.Null, false
}

type trueFilter struct{}

// Everything matches every document.
func Everything() Filter { return trueFilter{} }

func (trueFilter) Match(mmvalue.Value) bool                  { return true }
func (trueFilter) String() string                            { return "{}" }
func (trueFilter) equalityOn() (string, mmvalue.Value, bool) { return "", mmvalue.Null, false }

// FindOptions tunes a Find call.
type FindOptions struct {
	// SortPath orders results by the value at this dotted path.
	SortPath string
	// Descending flips the sort order.
	Descending bool
	// Limit caps the number of results; <0 means unlimited.
	Limit int
	// Projection restricts result documents to these dotted paths
	// (plus _id).
	Projection []string
}

// Find returns clones of all documents visible to tx matching filter,
// honouring opts. A nil opts means no sort, no limit, full documents.
func (c *Collection) Find(tx *txn.Tx, filter Filter, opts *FindOptions) []mmvalue.Value {
	if filter == nil {
		filter = Everything()
	}
	limit := -1
	if opts != nil {
		limit = opts.Limit
		if opts.Limit == 0 {
			limit = -1
		}
	}
	var out []mmvalue.Value
	noSort := opts == nil || opts.SortPath == ""
	collect := func(doc mmvalue.Value) bool {
		if !filter.Match(doc) {
			return true
		}
		out = append(out, doc)
		// Early stop only when no post-sort is requested.
		return !(noSort && limit >= 0 && len(out) >= limit)
	}
	// Index route when the filter pins an indexed path.
	if path, lit, ok := filter.equalityOn(); ok && c.HasIndex(path) {
		ix := c.index(path)
		ids := ix.candidates(valKey(lit))
		sort.Strings(ids)
		for _, id := range ids {
			doc, live := c.readVisible(tx, id)
			if !live {
				continue
			}
			if !collect(doc) {
				break
			}
		}
	} else {
		c.scan(tx, func(_ string, doc mmvalue.Value) bool { return collect(doc) })
	}
	if opts != nil && opts.SortPath != "" {
		p := mmvalue.ParsePath(opts.SortPath)
		sort.SliceStable(out, func(i, j int) bool {
			a := p.LookupOr(out[i], mmvalue.Null)
			b := p.LookupOr(out[j], mmvalue.Null)
			if opts.Descending {
				return mmvalue.Compare(a, b) > 0
			}
			return mmvalue.Compare(a, b) < 0
		})
	}
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	res := make([]mmvalue.Value, len(out))
	for i, doc := range out {
		if opts != nil && len(opts.Projection) > 0 {
			res[i] = project(doc, opts.Projection)
		} else {
			res[i] = doc.Clone()
		}
	}
	return res
}

// FindOne returns the first matching document in id order.
func (c *Collection) FindOne(tx *txn.Tx, filter Filter) (mmvalue.Value, bool) {
	docs := c.Find(tx, filter, &FindOptions{Limit: 1})
	if len(docs) == 0 {
		return mmvalue.Null, false
	}
	return docs[0], true
}

// CountWhere returns the number of documents matching filter.
func (c *Collection) CountWhere(tx *txn.Tx, filter Filter) int {
	if filter == nil {
		filter = Everything()
	}
	n := 0
	if path, lit, ok := filter.equalityOn(); ok && c.HasIndex(path) {
		ix := c.index(path)
		for _, id := range ix.candidates(valKey(lit)) {
			if doc, live := c.readVisible(tx, id); live && filter.Match(doc) {
				n++
			}
		}
		return n
	}
	c.scan(tx, func(_ string, doc mmvalue.Value) bool {
		if filter.Match(doc) {
			n++
		}
		return true
	})
	return n
}

func project(doc mmvalue.Value, paths []string) mmvalue.Value {
	o := mmvalue.NewObject()
	if id, ok := mmvalue.ParsePath(IDField).Lookup(doc); ok {
		o.Set(IDField, id)
	}
	root := mmvalue.FromObject(o)
	for _, p := range paths {
		pp := mmvalue.ParsePath(p)
		if v, ok := pp.Lookup(doc); ok {
			root, _ = pp.Set(root, v.Clone())
		}
	}
	return root
}
