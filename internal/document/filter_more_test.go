package document

import (
	"fmt"
	"testing"

	"udbench/internal/mmvalue"
	"udbench/internal/txn"
)

func TestFindOptionsZeroLimitMeansUnlimited(t *testing.T) {
	c := newTestStore().Collection("x")
	for i := 0; i < 5; i++ {
		c.Insert(nil, mmvalue.ObjectOf("_id", fmt.Sprintf("d%d", i), "n", i))
	}
	docs := c.Find(nil, nil, &FindOptions{Limit: 0})
	if len(docs) != 5 {
		t.Errorf("limit 0 (unset) returned %d", len(docs))
	}
	docs = c.Find(nil, nil, &FindOptions{Limit: -1})
	if len(docs) != 5 {
		t.Errorf("limit -1 returned %d", len(docs))
	}
}

func TestSortByNestedPathAndMissingValues(t *testing.T) {
	c := newTestStore().Collection("x")
	c.Insert(nil, mmvalue.MustParseJSON(`{"_id":"a","m":{"rank":3}}`))
	c.Insert(nil, mmvalue.MustParseJSON(`{"_id":"b"}`))
	c.Insert(nil, mmvalue.MustParseJSON(`{"_id":"c","m":{"rank":1}}`))
	docs := c.Find(nil, nil, &FindOptions{SortPath: "m.rank"})
	var ids []string
	for _, d := range docs {
		id, _ := d.MustObject().Get("_id")
		ids = append(ids, id.MustString())
	}
	// Missing path collates first (null), then 1, then 3.
	if fmt.Sprint(ids) != "[b c a]" {
		t.Errorf("nested sort = %v", ids)
	}
}

func TestFuncFilter(t *testing.T) {
	c := newTestStore().Collection("x")
	c.Insert(nil, mmvalue.MustParseJSON(`{"_id":"a","items":[{"q":1},{"q":5}]}`))
	c.Insert(nil, mmvalue.MustParseJSON(`{"_id":"b","items":[{"q":2}]}`))
	f := Func("any q > 3", func(doc mmvalue.Value) bool {
		items, _ := mmvalue.ParsePath("items").LookupOr(doc, mmvalue.Null).AsArray()
		for _, it := range items {
			if q, _ := it.MustObject().GetOr("q", mmvalue.Int(0)).AsFloat(); q > 3 {
				return true
			}
		}
		return false
	})
	if n := c.CountWhere(nil, f); n != 1 {
		t.Errorf("func filter matched %d", n)
	}
	if s := f.String(); s != "{$func: any q > 3}" {
		t.Errorf("func filter string = %s", s)
	}
}

func TestIndexAfterDeleteFiltersTombstones(t *testing.T) {
	c := newTestStore().Collection("x")
	c.CreateIndex("k")
	for i := 0; i < 10; i++ {
		c.Insert(nil, mmvalue.ObjectOf("_id", fmt.Sprintf("d%d", i), "k", i%2))
	}
	c.Delete(nil, "d0")
	c.Delete(nil, "d2")
	docs := c.Find(nil, Eq("k", 0), nil)
	if len(docs) != 3 {
		t.Errorf("indexed find after deletes = %d, want 3", len(docs))
	}
}

func TestFindUnderTransactionSeesOwnWrites(t *testing.T) {
	s := newTestStore()
	c := s.Collection("x")
	c.Insert(nil, mmvalue.ObjectOf("_id", "a", "v", 1))
	err := s.Manager().RunWith(0, func(tx *txn.Tx) error {
		if err := c.Insert(tx, mmvalue.ObjectOf("_id", "b", "v", 2)); err != nil {
			return err
		}
		docs := c.Find(tx, nil, nil)
		if len(docs) != 2 {
			return fmt.Errorf("tx sees %d docs, want 2", len(docs))
		}
		if err := c.SetPath(tx, "a", "v", mmvalue.Int(10)); err != nil {
			return err
		}
		doc, _ := c.Get(tx, "a")
		if v, _ := doc.MustObject().Get("v"); !mmvalue.Equal(v, mmvalue.Int(10)) {
			return fmt.Errorf("tx does not see own update")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProjectionDoesNotFabricateMissingPaths(t *testing.T) {
	c := newTestStore().Collection("x")
	c.Insert(nil, mmvalue.MustParseJSON(`{"_id":"a","p":{"q":1}}`))
	docs := c.Find(nil, nil, &FindOptions{Projection: []string{"p.q", "p.nope", "zz"}})
	o := docs[0].MustObject()
	if v, ok := mmvalue.ParsePath("p.q").Lookup(docs[0]); !ok || !mmvalue.Equal(v, mmvalue.Int(1)) {
		t.Error("nested projection lost value")
	}
	if _, ok := mmvalue.ParsePath("p.nope").Lookup(docs[0]); ok {
		t.Error("projection fabricated missing nested path")
	}
	if _, ok := o.Get("zz"); ok {
		t.Error("projection fabricated missing top path")
	}
}
