package udbms

import (
	"testing"

	"udbench/internal/mmvalue"
	"udbench/internal/relational"
)

// A GetShared probe of a key that does not exist takes (and releases) a
// shared lock on a name with no version chain, leaving a resident lock
// entry behind. A storm of such misses — a point-read-miss workload, or
// an analytic scan probing sparse keys — must not grow the lock table
// unboundedly: Compact is the GC point that sweeps the idle entries.
func TestCompactSweepsProbedLockEntries(t *testing.T) {
	db := Open()
	schema, err := relational.NewSchema("id", relational.Column{Name: "id", Type: relational.TypeInt})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Relational.CreateTable("sparse", schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(nil, mmvalue.ObjectOf("id", 1)); err != nil {
		t.Fatal(err)
	}

	base := db.Manager().LockEntryCount()

	const misses = 2000
	for i := 0; i < misses; i++ {
		tx := db.Begin()
		if _, ok, err := tbl.GetShared(tx, 1000000+i); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Fatalf("probe %d unexpectedly found a row", i)
		}
		tx.Abort()
	}
	grown := db.Manager().LockEntryCount()
	if grown < base+misses {
		t.Fatalf("miss storm should leave >= %d resident entries, have %d (base %d)", misses, grown, base)
	}

	db.Compact(0)

	after := db.Manager().LockEntryCount()
	if after >= base+misses/10 {
		t.Fatalf("Compact left %d lock entries resident (base %d): miss-storm entries were not swept", after, base)
	}

	// The store still works after the sweep: hits, misses and writes.
	tx := db.Begin()
	if _, ok, err := tbl.GetShared(tx, 1); err != nil || !ok {
		t.Fatalf("GetShared hit after sweep: ok=%v err=%v", ok, err)
	}
	if _, ok, err := tbl.GetShared(tx, 424242); err != nil || ok {
		t.Fatalf("GetShared miss after sweep: ok=%v err=%v", ok, err)
	}
	tx.Abort()
	if err := tbl.Insert(nil, mmvalue.ObjectOf("id", 2)); err != nil {
		t.Fatal(err)
	}
}
