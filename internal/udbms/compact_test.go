package udbms

import (
	"fmt"
	"testing"

	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/xmlstore"
)

func TestEngineWideCompact(t *testing.T) {
	db := seedSmall(t)
	// Generate garbage versions in every model.
	for i := 0; i < 5; i++ {
		if err := db.Docs.Collection("orders").SetPath(nil, "o1", "total", mmvalue.Float(float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := db.KV.Put(nil, "feedback/2/o1", mmvalue.ObjectOf("rating", i)); err != nil {
			t.Fatal(err)
		}
		err := db.XML.Update(nil, "o1", func(n *xmlstore.Node) (*xmlstore.Node, error) {
			n.SetAttr("rev", fmt.Sprint(i))
			return n, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		cust, _ := db.Relational.Table("customer")
		err = cust.Update(nil, 1, func(r mmvalue.Value) (mmvalue.Value, error) {
			r.MustObject().Set("city", mmvalue.String(fmt.Sprintf("city%d", i)))
			return r, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	dropped := db.Compact(0) // horizon defaults to now
	if dropped < 16 {
		t.Errorf("Compact dropped %d versions, want >= 16", dropped)
	}
	// Everything still readable at latest.
	if _, ok := db.Docs.Collection("orders").Get(nil, "o1"); !ok {
		t.Error("doc lost in compact")
	}
	if _, ok := db.KV.Get(nil, "feedback/2/o1"); !ok {
		t.Error("kv lost in compact")
	}
	if _, ok := db.XML.Get(nil, "o1"); !ok {
		t.Error("xml lost in compact")
	}
	cust, _ := db.Relational.Table("customer")
	if _, ok := cust.Get(nil, 1); !ok {
		t.Error("row lost in compact")
	}
	// A second compact finds nothing more.
	if again := db.Compact(0); again != 0 {
		t.Errorf("second compact dropped %d", again)
	}
}

func TestCompactPreservesExplicitHorizon(t *testing.T) {
	db := Open()
	if err := db.KV.Put(nil, "k", mmvalue.Int(1)); err != nil {
		t.Fatal(err)
	}
	tsAfterV1 := db.Manager().Oracle().Current()
	if err := db.KV.Put(nil, "k", mmvalue.Int(2)); err != nil {
		t.Fatal(err)
	}
	// Horizon at v1's timestamp: v1 must survive (a reader could still
	// be at that snapshot).
	db.Compact(tsAfterV1)
	if v, ok := db.KV.Get(nil, "k"); !ok || !mmvalue.Equal(v, mmvalue.Int(2)) {
		t.Error("latest version corrupted by horizon compact")
	}
}

func TestStatsAfterDeletes(t *testing.T) {
	db := seedSmall(t)
	if err := db.Docs.Collection("orders").Delete(nil, "o1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Graph.RemoveVertex(nil, "c3"); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Collections["orders"] != 3 {
		t.Errorf("orders after delete = %d", st.Collections["orders"])
	}
	if st.Vertices != 2 {
		t.Errorf("vertices after removal = %d", st.Vertices)
	}
	if st.Edges != 1 { // k23 removed with c3
		t.Errorf("edges after vertex removal = %d", st.Edges)
	}
}

func TestPipelineUnderExplicitSnapshot(t *testing.T) {
	db := seedSmall(t)
	tx := db.Begin()
	defer tx.Abort()
	// Mutate after the snapshot.
	cust, _ := db.Relational.Table("customer")
	if err := cust.Insert(nil, mmvalue.ObjectOf("id", 99, "name", "late", "city", "hki")); err != nil {
		t.Fatal(err)
	}
	n, err := db.Pipeline(tx).
		FromRelational("customer", relational.Col("city").Eq("hki")).
		Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("snapshot pipeline saw %d customers, want 3", n)
	}
	n, err = db.Pipeline(nil).
		FromRelational("customer", relational.Col("city").Eq("hki")).
		Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("latest pipeline saw %d customers, want 4", n)
	}
}
