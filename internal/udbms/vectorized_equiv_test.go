package udbms

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"udbench/internal/document"
	"udbench/internal/mmvalue"
)

// Property test: the vectorized batch executor is observationally
// identical to a row-at-a-time reference interpreter for randomized
// pipelines — seed × filter × map × join × sort × limit × group-by in
// random order — both sequentially and in Parallel morsel mode. The
// reference applies each stage's documented semantics with plain Go
// loops over materialized rows; the only tolerated difference is the
// internal order of join match arrays (strategies may emit matches in
// index vs scan order), which canonRow sorts away on both sides.

// sigOf is a pure row fingerprint that deliberately ignores join match
// arrays (their internal order is strategy-dependent), so it is safe
// as a filter/map input at any pipeline position.
func sigOf(r mmvalue.Value) int {
	o := r.MustObject()
	s := o.GetOr("cid", mmvalue.Null).String() +
		o.GetOr("n", mmvalue.Null).String() +
		o.GetOr("k", mmvalue.Null).String()
	return len(s)
}

// pipeOp pairs a pipeline stage with its reference implementation.
type pipeOp struct {
	name  string
	build func(p *Pipeline) *Pipeline
	ref   func(db *DB, rows []mmvalue.Value) []mmvalue.Value
}

func refSort(rows []mmvalue.Value, path mmvalue.Path, desc bool) []mmvalue.Value {
	keys := make([]mmvalue.Value, len(rows))
	for i, r := range rows {
		keys[i] = path.LookupOr(r, mmvalue.Null)
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		a, b := keys[idx[i]], keys[idx[j]]
		if desc {
			a, b = b, a
		}
		return mmvalue.Compare(a, b) < 0
	})
	out := make([]mmvalue.Value, len(rows))
	for i, id := range idx {
		out[i] = rows[id]
	}
	return out
}

func refGroupBy(rows []mmvalue.Value, keyPath mmvalue.Path, asKey string, aggs []Agg) []mmvalue.Value {
	type racc struct {
		key   mmvalue.Value
		count int64
		st    []aggState
	}
	buckets := map[uint64][]*racc{}
	var order []*racc
	for _, r := range rows {
		key := keyPath.LookupOr(r, mmvalue.Null)
		var a *racc
		h := key.Hash()
		for _, c := range buckets[h] {
			if mmvalue.Equal(c.key, key) {
				a = c
				break
			}
		}
		if a == nil {
			a = &racc{key: key.Clone(), st: make([]aggState, len(aggs))}
			buckets[h] = append(buckets[h], a)
			order = append(order, a)
		}
		a.count++
		for k := range aggs {
			ag := &aggs[k]
			s := &a.st[k]
			switch ag.kind {
			case aggSum, aggAvg:
				if f, ok := ag.path.LookupOr(r, mmvalue.Null).AsFloat(); ok {
					s.sum += f
					s.n++
				}
			case aggMin:
				if v := ag.path.LookupOr(r, mmvalue.Null); !v.IsNull() {
					if !s.seen || mmvalue.Compare(v, s.best) < 0 {
						s.best, s.seen = v.Clone(), true
					}
				}
			case aggMax:
				if v := ag.path.LookupOr(r, mmvalue.Null); !v.IsNull() {
					if !s.seen || mmvalue.Compare(v, s.best) > 0 {
						s.best, s.seen = v.Clone(), true
					}
				}
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return mmvalue.Compare(order[i].key, order[j].key) < 0
	})
	out := make([]mmvalue.Value, 0, len(order))
	for _, a := range order {
		obj := mmvalue.NewObject()
		obj.Set(asKey, a.key)
		for k := range aggs {
			ag := &aggs[k]
			s := a.st[k]
			switch ag.kind {
			case aggCount:
				obj.Set(ag.as, mmvalue.Int(a.count))
			case aggSum:
				obj.Set(ag.as, mmvalue.Float(s.sum))
			case aggAvg:
				if s.n > 0 {
					obj.Set(ag.as, mmvalue.Float(s.sum/float64(s.n)))
				} else {
					obj.Set(ag.as, mmvalue.Null)
				}
			case aggMin, aggMax:
				if s.seen {
					obj.Set(ag.as, s.best)
				} else {
					obj.Set(ag.as, mmvalue.Null)
				}
			}
		}
		out = append(out, mmvalue.FromObject(obj))
	}
	return out
}

// randOps draws 2–5 random stages. Join attachment fields are unique
// per position ("m0", "m1", ...) and reported so canonRow can
// normalize their internal order.
func randOps(rng *rand.Rand) (ops []pipeOp, joinFields []string) {
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(7) {
		case 0: // filter
			k := 2 + rng.Intn(3)
			pred := func(r mmvalue.Value) bool { return sigOf(r)%k != 0 }
			ops = append(ops, pipeOp{
				name:  fmt.Sprintf("filter%%%d", k),
				build: func(p *Pipeline) *Pipeline { return p.Filter(pred) },
				ref: func(_ *DB, rows []mmvalue.Value) []mmvalue.Value {
					var out []mmvalue.Value
					for _, r := range rows {
						if pred(r) {
							out = append(out, r)
						}
					}
					return out
				},
			})
		case 1: // map: attach a derived field on a clone
			fn := func(r mmvalue.Value) mmvalue.Value {
				c := r.Clone()
				c.MustObject().Set("len", mmvalue.Int(int64(sigOf(r))))
				return c
			}
			ops = append(ops, pipeOp{
				name:  "map",
				build: func(p *Pipeline) *Pipeline { return p.Map(fn) },
				ref: func(_ *DB, rows []mmvalue.Value) []mmvalue.Value {
					out := make([]mmvalue.Value, len(rows))
					for i, r := range rows {
						out[i] = fn(r)
					}
					return out
				},
			})
		case 2: // sort
			paths := []string{"cid", "n", "payload", "ref.cid", "k"}
			path := paths[rng.Intn(len(paths))]
			desc := rng.Intn(2) == 0
			pp := mmvalue.ParsePath(path)
			ops = append(ops, pipeOp{
				name:  fmt.Sprintf("sort(%s,desc=%v)", path, desc),
				build: func(p *Pipeline) *Pipeline { return p.SortBy(path, desc) },
				ref: func(_ *DB, rows []mmvalue.Value) []mmvalue.Value {
					return refSort(rows, pp, desc)
				},
			})
		case 3: // limit
			lim := rng.Intn(60)
			ops = append(ops, pipeOp{
				name:  fmt.Sprintf("limit(%d)", lim),
				build: func(p *Pipeline) *Pipeline { return p.Limit(lim) },
				ref: func(_ *DB, rows []mmvalue.Value) []mmvalue.Value {
					if len(rows) > lim {
						rows = rows[:lim]
					}
					return rows
				},
			})
		case 4: // join against the build collection (nested key path)
			field := fmt.Sprintf("m%d", i)
			joinFields = append(joinFields, field)
			ops = append(ops, pipeOp{
				name:  "joinDocs/" + field,
				build: func(p *Pipeline) *Pipeline { return p.JoinDocuments("build", "cid", "ref.cid", field) },
				ref: func(db *DB, rows []mmvalue.Value) []mmvalue.Value {
					return refJoinDocuments(db, rows, "build", "cid", "ref.cid", field)
				},
			})
		case 5: // join against the relational build table
			field := fmt.Sprintf("m%d", i)
			joinFields = append(joinFields, field)
			ops = append(ops, pipeOp{
				name:  "joinRel/" + field,
				build: func(p *Pipeline) *Pipeline { return p.JoinRelational("buildtab", "cid", "cid", field) },
				ref: func(db *DB, rows []mmvalue.Value) []mmvalue.Value {
					return refJoinRelational(db, rows, "buildtab", "cid", "cid", field)
				},
			})
		case 6: // group-by with a random aggregate set
			keys := []string{"cid", "n"}
			keyPath := keys[rng.Intn(len(keys))]
			aggs := []Agg{Count("c")}
			if rng.Intn(2) == 0 {
				aggs = append(aggs, Sum("n", "s"))
			}
			if rng.Intn(2) == 0 {
				aggs = append(aggs, Avg("n", "av"))
			}
			if rng.Intn(2) == 0 {
				aggs = append(aggs, Min("cid", "mn"))
			}
			if rng.Intn(2) == 0 {
				aggs = append(aggs, Max("payload", "mx"))
			}
			pp := mmvalue.ParsePath(keyPath)
			ops = append(ops, pipeOp{
				name:  fmt.Sprintf("group(%s)", keyPath),
				build: func(p *Pipeline) *Pipeline { return p.GroupBy(keyPath, "k", aggs...) },
				ref: func(_ *DB, rows []mmvalue.Value) []mmvalue.Value {
					return refGroupBy(rows, pp, "k", aggs)
				},
			})
		}
	}
	return ops, joinFields
}

// canonRow renders a row with its join match arrays internally sorted.
func canonRows(rows []mmvalue.Value, joinFields []string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		o := r.MustObject()
		for _, f := range joinFields {
			if arr, ok := o.GetOr(f, mmvalue.Null).AsArray(); ok && len(arr) > 1 {
				sorted := append([]mmvalue.Value(nil), arr...)
				sort.Slice(sorted, func(a, b int) bool { return sorted[a].String() < sorted[b].String() })
				o.Set(f, mmvalue.Array(sorted...))
			}
		}
		out[i] = r.String()
	}
	return out
}

func TestVectorizedPipelineEquivalence(t *testing.T) {
	seedPred := document.Func("sig%3 != 0", func(doc mmvalue.Value) bool {
		return sigOf(doc)%3 != 0
	})
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			db := seedJoinDB(t, rng,
				80+rng.Intn(120), 40+rng.Intn(40), rng.Intn(2) == 0, rng.Intn(2) == 0)
			ops, joinFields := randOps(rng)
			seedKind := rng.Intn(3)

			// Reference rows: materialize the seed, then interpret each
			// stage with plain loops.
			var refRows []mmvalue.Value
			switch seedKind {
			case 0:
				refRows = db.Docs.Collection("probe").Find(nil, nil, nil)
			case 1:
				refRows = db.Docs.Collection("probe").Find(nil, seedPred, nil)
			default:
				tbl, _ := db.Relational.Table("buildtab")
				refRows = tbl.Query(nil).Rows()
			}
			names := make([]string, len(ops))
			for i, op := range ops {
				refRows = op.ref(db, refRows)
				names[i] = op.name
			}
			want := canonRows(refRows, joinFields)

			for _, par := range []int{1, 4} {
				p := db.Pipeline(nil)
				switch seedKind {
				case 0:
					p = p.FromDocuments("probe", nil)
				case 1:
					p = p.FromDocuments("probe", seedPred)
				default:
					p = p.FromRelational("buildtab", nil)
				}
				for _, op := range ops {
					p = op.build(p)
				}
				if par > 1 {
					p = p.Parallel(par)
				}
				rows, err := p.Rows()
				if err != nil {
					t.Fatalf("par=%d seed=%d ops=%v: %v", par, seedKind, names, err)
				}
				got := canonRows(rows, joinFields)
				if len(got) != len(want) {
					t.Fatalf("par=%d seed=%d ops=%v: %d rows, want %d",
						par, seedKind, names, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("par=%d seed=%d ops=%v: row %d:\n got  %s\n want %s",
							par, seedKind, names, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestGroupByAggregates pins the concrete aggregate semantics: sums
// and averages skip non-numeric values, min/max skip nulls, missing
// keys group under null, and output rows arrive key-ascending.
func TestGroupByAggregates(t *testing.T) {
	db := Open()
	coll := db.Docs.Collection("sales")
	docs := []mmvalue.Value{
		mmvalue.ObjectOf("_id", "h1", "city", "Helsinki", "amt", 10),
		mmvalue.ObjectOf("_id", "h2", "city", "Helsinki", "amt", 20.5),
		mmvalue.ObjectOf("_id", "h3", "city", "Helsinki"), // no amt
		mmvalue.ObjectOf("_id", "t1", "city", "Turku", "amt", 5),
		mmvalue.ObjectOf("_id", "x1", "amt", 7), // no city: null group
	}
	for _, d := range docs {
		if err := coll.Insert(nil, d); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Pipeline(nil).
		FromDocuments("sales", nil).
		GroupBy("city", "city",
			Sum("amt", "s"), Count("c"), Min("amt", "mn"), Max("amt", "mx"), Avg("amt", "av")).
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d groups, want 3: %v", len(rows), rows)
	}
	check := func(i int, key, s, c, mn, mx, av mmvalue.Value) {
		t.Helper()
		o := rows[i].MustObject()
		for name, want := range map[string]mmvalue.Value{
			"city": key, "s": s, "c": c, "mn": mn, "mx": mx, "av": av,
		} {
			if got := o.GetOr(name, mmvalue.String("<unset>")); !mmvalue.Equal(got, want) {
				t.Errorf("group %d field %s = %s, want %s", i, name, got, want)
			}
		}
	}
	// Null sorts before strings, so the no-city group comes first.
	check(0, mmvalue.Null, mmvalue.Float(7), mmvalue.Int(1),
		mmvalue.Int(7), mmvalue.Int(7), mmvalue.Float(7))
	check(1, mmvalue.String("Helsinki"), mmvalue.Float(30.5), mmvalue.Int(3),
		mmvalue.Int(10), mmvalue.Float(20.5), mmvalue.Float(15.25))
	check(2, mmvalue.String("Turku"), mmvalue.Float(5), mmvalue.Int(1),
		mmvalue.Int(5), mmvalue.Int(5), mmvalue.Float(5))
}

// TestParallelLimitStopsScanning is the regression test for the old
// caveat that Parallel scanned every partition fully even under an
// early Limit. The shared row budget (or stop flag) must halt morsel
// claiming: with Limit(8) over 10k documents, the seed predicate must
// run on well under half the collection, while still returning exactly
// the sequential result.
func TestParallelLimitStopsScanning(t *testing.T) {
	db := Open()
	coll := db.Docs.Collection("wide")
	const total = 10000
	for i := 0; i < total; i++ {
		if err := coll.Insert(nil, mmvalue.ObjectOf(
			"_id", fmt.Sprintf("w%05d", i), "n", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var visited atomic.Int64
	run := func(par int) []mmvalue.Value {
		p := db.Pipeline(nil).
			FromDocuments("wide", document.Func("count visits", func(mmvalue.Value) bool {
				visited.Add(1)
				return true
			})).
			Limit(8)
		if par > 1 {
			p = p.Parallel(par)
		}
		rows, err := p.Rows()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}

	seq := run(1)
	if len(seq) != 8 {
		t.Fatalf("sequential Limit(8) returned %d rows", len(seq))
	}

	visited.Store(0)
	par := run(4)
	parVisited := visited.Load()
	if len(par) != 8 {
		t.Fatalf("parallel Limit(8) returned %d rows", len(par))
	}
	for i := range par {
		if par[i].String() != seq[i].String() {
			t.Errorf("row %d differs:\n got  %s\n want %s", i, par[i], seq[i])
		}
	}
	// Workers stop at morsel granularity, so a small overshoot past the
	// budget is expected — but nowhere near a full scan.
	if parVisited > total*3/4 {
		t.Errorf("Parallel(4)+Limit(8) visited %d of %d rows: partitions were scanned fully", parVisited, total)
	}

	// A limit behind a filter takes the stop-flag path (the budget
	// cannot be pushed through a non-1:1 stage); it must short-circuit
	// too.
	visited.Store(0)
	rows, err := db.Pipeline(nil).
		FromDocuments("wide", document.Func("count visits", func(mmvalue.Value) bool {
			visited.Add(1)
			return true
		})).
		Filter(func(r mmvalue.Value) bool {
			n, _ := r.MustObject().GetOr("n", mmvalue.Int(0)).AsInt()
			return n%2 == 0
		}).
		Limit(8).
		Parallel(4).
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("filtered parallel Limit(8) returned %d rows", len(rows))
	}
	if v := visited.Load(); v > total*3/4 {
		t.Errorf("stop-flag path visited %d of %d rows: no short-circuit", v, total)
	}
}
