package udbms

import (
	"udbench/internal/mmvalue"
)

// This file defines the columnar unit of execution. Operators no longer
// exchange single rows through interface calls: they exchange a *Batch —
// up to batchCap row references plus a selection vector — so the
// per-row dynamic dispatch of the old push-based chain is amortized to
// one virtual call per batch, and the inner loops over a batch are
// monomorphic and inlinable.

const (
	// batchCap is the maximum number of rows per Batch. 1024 rows keeps
	// a batch of Value headers (~48 KB) inside L1/L2 while amortizing
	// the per-batch operator dispatch to noise.
	batchCap = 1024
	// morselSize is the target number of row slots per parallel scan
	// morsel. Small enough that a skewed predicate cannot straggle one
	// worker for long, large enough that the shared cursor is cold.
	morselSize = 256
	// maxMorsels bounds the morsel count so split-point computation and
	// per-morsel bookkeeping stay cheap on huge stores.
	maxMorsels = 1024
)

// Batch is a transient view of up to batchCap rows flowing through the
// executor. rows is the fallback column: whole-row mmvalue references,
// possibly shared with store memory. sel, when non-nil, lists the live
// row indexes in emission order — filters narrow a batch by rewriting
// sel instead of copying rows. A nil sel means every row is live.
//
// Batches are owned by the operator that emits them and are valid only
// for the duration of the downstream push call: buffering stages (sort,
// join, group-by) copy the row references they keep; nothing may retain
// the Batch itself.
type Batch struct {
	rows []mmvalue.Value
	sel  []int32
}

// Len returns the number of live rows in the batch.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return len(b.rows)
}

// Row returns the i-th live row (0 <= i < Len()).
func (b *Batch) Row(i int) mmvalue.Value {
	if b.sel != nil {
		return b.rows[b.sel[i]]
	}
	return b.rows[i]
}

// truncate drops all but the first n live rows.
func (b *Batch) truncate(n int) {
	if b.sel != nil {
		b.sel = b.sel[:n]
		return
	}
	b.rows = b.rows[:n]
}

// reset empties the batch for reuse, keeping row capacity.
func (b *Batch) reset() {
	b.rows = b.rows[:0]
	b.sel = nil
}

// colVec is a column extracted from buffered rows: the values at one
// path, plus enough kind bookkeeping to decide whether a typed vector
// (int64/float64/string) can replace mmvalue comparisons in the hot
// loop. Values are headers only — extraction never clones.
type colVec struct {
	vals []mmvalue.Value
	// kinds is a bitmask of the mmvalue kinds seen; homogeneous()
	// reports a typed fast path only when exactly one scalar kind is
	// present across every value.
	kinds uint16
}

func (c *colVec) reset() {
	c.vals = c.vals[:0]
	c.kinds = 0
}

func (c *colVec) append(v mmvalue.Value) {
	c.vals = append(c.vals, v)
	c.kinds |= 1 << uint(v.Kind())
}

// homogeneous reports the single scalar kind shared by every value, if
// any. Mixed batches (or any null/array/object value) fall back to the
// mmvalue column.
func (c *colVec) homogeneous() (mmvalue.Kind, bool) {
	switch c.kinds {
	case 1 << uint(mmvalue.KindInt):
		return mmvalue.KindInt, true
	case 1 << uint(mmvalue.KindFloat):
		return mmvalue.KindFloat, true
	case 1 << uint(mmvalue.KindString):
		return mmvalue.KindString, true
	}
	return mmvalue.KindNull, false
}

// ints materializes the typed int64 vector (call only when homogeneous
// reported KindInt).
func (c *colVec) ints(buf []int64) []int64 {
	buf = buf[:0]
	for _, v := range c.vals {
		i, _ := v.AsInt()
		buf = append(buf, i)
	}
	return buf
}

// floats materializes the typed float64 vector (KindFloat only).
func (c *colVec) floats(buf []float64) []float64 {
	buf = buf[:0]
	for _, v := range c.vals {
		f, _ := v.AsFloat()
		buf = append(buf, f)
	}
	return buf
}

// strs materializes the typed string vector (KindString only).
func (c *colVec) strs(buf []string) []string {
	buf = buf[:0]
	for _, v := range c.vals {
		s, _ := v.AsString()
		buf = append(buf, s)
	}
	return buf
}
