package udbms

import (
	"runtime"
	"sync"
	"sync/atomic"

	"udbench/internal/document"
	"udbench/internal/graph"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/txn"
)

// This file is the vectorized execution engine behind Pipeline: a
// push-based operator chain exchanging column batches (see batch.go),
// only evaluated when a terminal (Rows, Count, Each) pulls it.
//
// Ownership model. Source operators emit rows that are *shared* with
// the underlying stores — no clone is taken during execution. Each
// stage declares how it changes ownership:
//
//   - rowShared:  the row aliases store memory entirely; read-only.
//   - rowShallow: the top-level object is owned (fields can be added)
//     but nested values may still alias the store.
//   - rowOwned:   deep-cloned, fully owned by the pipeline.
//
// Join stages shallow-clone on demand before attaching match arrays;
// Map deep-clones before handing the row to user code. Rows() deep-
// clones anything not already rowOwned on the way out, so the public
// contract ("returned rows are yours to mutate") is unchanged while
// Count/Each and dropped rows (Limit) never pay for a clone.
//
// Parallelism model. Parallel(n) runs the seed scan with morsel-driven
// parallelism: the key space is pre-split into ~morselSize-row morsels
// and n workers claim them from a shared atomic cursor, so a skewed
// predicate cannot straggle one worker. Leading Filter stages execute
// inside the workers (they only rewrite selection vectors, so pushing
// them below the merge is safe); the surviving rows of completed
// morsels then stream through the rest of the chain in key order (an
// ordered merge — results are identical to the sequential scan). A
// shared row budget derived from a downstream Limit stops workers
// from scanning morsels the limit can never consume.

type rowState uint8

const (
	rowShared rowState = iota
	rowShallow
	rowOwned
)

// stage is one compiled pipeline operator.
type stage interface {
	// outState reports the ownership of rows this stage emits, given
	// the ownership of rows it receives.
	outState(in rowState) rowState
	// retains reports whether the stage may hold on to pushed rows
	// beyond the push call (buffering sorts and adaptive joins do).
	// When nothing downstream retains, upstream attach stages recycle
	// scratch row objects instead of shallow-cloning per row.
	retains() bool
	// wire builds this stage's batch sink in front of down. transient
	// is true when no downstream consumer retains pushed rows.
	wire(in rowState, transient bool, down batchSink) batchSink
}

// source produces the seed batch stream.
type source interface {
	state() rowState
	run(emit func(*Batch) bool)
	// morsels splits the scan into fixed-size key-range morsels for
	// parallel execution; nil means the source does not support it
	// (index routes and graph scans). workers hints the parallelism
	// degree so tiny stores still yield one morsel per worker.
	morsels(workers int) *morselScan
}

// morselScan is a partitioned scan: ranges lists contiguous [from, to)
// key ranges in key order; scan streams one range's matching rows in
// batches of shared rows gathered into scratch — callers hand each
// worker one reusable scratch buffer instead of allocating per morsel.
type morselScan struct {
	ranges [][2]string
	scan   func(from, to string, scratch []mmvalue.Value, fn func(rows []mmvalue.Value) bool)
}

// morselRanges turns split-point boundaries into [from, to) ranges.
func morselRanges(bounds []string) [][2]string {
	if len(bounds) == 0 {
		return nil
	}
	edges := append(append(make([]string, 0, len(bounds)+2), ""), bounds...)
	edges = append(edges, "")
	ranges := make([][2]string, len(edges)-1)
	for i := 0; i < len(edges)-1; i++ {
		ranges[i] = [2]string{edges[i], edges[i+1]}
	}
	return ranges
}

// morselCount sizes the morsel set for a store with n row slots.
func morselCount(n, workers int) int {
	m := n / morselSize
	if m < workers {
		m = workers
	}
	if m > maxMorsels {
		m = maxMorsels
	}
	return m
}

// rowBufPool recycles the executor's row buffers — seed scan batches,
// morsel scratch, join probe buffers — across queries. These buffers
// peak at a few KB to a few tens of KB each; allocating them fresh per
// query dominated the allocation profile of small and mid-size
// queries. Buffers are cleared before going back so pooled slots never
// pin store rows.
var rowBufPool = sync.Pool{New: func() any { return &rowBuf{} }}

type rowBuf struct{ rows []mmvalue.Value }

func getRowBuf(capHint int) *rowBuf {
	rb := rowBufPool.Get().(*rowBuf)
	if cap(rb.rows) < capHint {
		rb.rows = make([]mmvalue.Value, 0, capHint)
	}
	return rb
}

// putRowBuf clears rows (the buffer's current backing array, possibly
// regrown since getRowBuf) and returns it to the pool.
func putRowBuf(rb *rowBuf, rows []mmvalue.Value) {
	rows = rows[:cap(rows)]
	clear(rows)
	rb.rows = rows[:0]
	rowBufPool.Put(rb)
}

// seedBufCap sizes a seed scan's batch buffer: full batches for large
// stores, right-sized ones for small stores — a fixed batchCap buffer
// (batchCap rows of 72-byte values) would dwarf the per-query
// allocations of every small and mid-size query.
func seedBufCap(n int) int {
	if n > batchCap {
		return batchCap
	}
	if n < 16 {
		return 16
	}
	return n
}

// ---- sources ----

type relSource struct {
	t     *relational.Table
	tx    *txn.Tx
	where relational.Expr
}

func (s *relSource) state() rowState { return rowShared }

func (s *relSource) run(emit func(*Batch) bool) {
	b := &Batch{}
	rb := getRowBuf(seedBufCap(s.t.Len()))
	s.t.StreamBatch(s.tx, s.where, rb.rows, func(rows []mmvalue.Value) bool {
		b.rows, b.sel = rows, nil
		return emit(b)
	})
	putRowBuf(rb, rb.rows)
}

func (s *relSource) morsels(workers int) *morselScan {
	if s.where != nil && s.t.UsesIndex(s.where) {
		return nil // index route: already sub-linear, not worth splitting
	}
	ranges := morselRanges(s.t.SplitPoints(morselCount(s.t.Len(), workers)))
	if ranges == nil {
		return nil
	}
	return &morselScan{ranges: ranges, scan: func(from, to string, scratch []mmvalue.Value, fn func([]mmvalue.Value) bool) {
		s.t.StreamRangeBatch(s.tx, from, to, s.where, scratch, fn)
	}}
}

type docSource struct {
	c      *document.Collection
	tx     *txn.Tx
	filter document.Filter
}

func (s *docSource) state() rowState { return rowShared }

func (s *docSource) run(emit func(*Batch) bool) {
	b := &Batch{}
	rb := getRowBuf(seedBufCap(s.c.Len()))
	s.c.StreamBatch(s.tx, s.filter, rb.rows, func(rows []mmvalue.Value) bool {
		b.rows, b.sel = rows, nil
		return emit(b)
	})
	putRowBuf(rb, rb.rows)
}

func (s *docSource) morsels(workers int) *morselScan {
	if s.filter != nil && s.c.UsesIndex(s.filter) {
		return nil
	}
	ranges := morselRanges(s.c.SplitPoints(morselCount(s.c.Len(), workers)))
	if ranges == nil {
		return nil
	}
	return &morselScan{ranges: ranges, scan: func(from, to string, scratch []mmvalue.Value, fn func([]mmvalue.Value) bool) {
		s.c.StreamRangeBatch(s.tx, from, to, s.filter, scratch, fn)
	}}
}

type graphSource struct {
	g     *graph.Store
	tx    *txn.Tx
	label string
	ok    func(graph.Vertex) bool
}

// Graph vertex rows are built fresh (cloned props + _vid/_label), so
// they are owned from the start.
func (s *graphSource) state() rowState { return rowOwned }

func (s *graphSource) run(emit func(*Batch) bool) {
	rb := getRowBuf(seedBufCap(batchCap))
	b := &Batch{rows: rb.rows}
	stopped := false
	s.g.Vertices(s.tx, func(v graph.Vertex) bool {
		if s.label != "" && v.Label != s.label {
			return true
		}
		if s.ok != nil && !s.ok(v) {
			return true
		}
		row := v.Props.Clone().MustObject()
		row.Set("_vid", mmvalue.String(string(v.ID)))
		row.Set("_label", mmvalue.String(v.Label))
		b.rows = append(b.rows, mmvalue.FromObject(row))
		if len(b.rows) == batchCap {
			if !emit(b) {
				stopped = true
				return false
			}
			b.reset()
		}
		return true
	})
	if !stopped && len(b.rows) > 0 {
		emit(b)
	}
	putRowBuf(rb, b.rows)
}

func (s *graphSource) morsels(int) *morselScan { return nil }

// ---- plan compilation and execution ----

// finalState computes the ownership of rows leaving the last stage.
func (p *Pipeline) finalState() rowState {
	if p.src == nil {
		return rowOwned
	}
	st := p.src.state()
	for _, s := range p.stages {
		st = s.outState(st)
	}
	return st
}

// execute compiles the operator chain and streams the final rows into
// onRow. Rows passed to onRow follow the pipeline's final ownership
// state — Rows() clones them as needed, Count/Each never do.
func (p *Pipeline) execute(onRow func(mmvalue.Value) bool) error {
	if p.err != nil {
		return p.err
	}
	if p.src == nil {
		return nil
	}
	if p.par > 1 {
		if ms := p.src.morsels(p.par); ms != nil && len(ms.ranges) > 1 {
			// Leading filters run inside the scan workers: they only
			// rewrite selection vectors (no ownership change, no
			// reordering), so pushing them below the merge parallelizes
			// predicate evaluation and shrinks the buffered morsels to
			// the surviving rows. The merger runs the rest of the chain.
			npref := 0
			for npref < len(p.stages) {
				if _, ok := p.stages[npref].(*filterStage); !ok {
					break
				}
				npref++
			}
			head := p.wireChain(p.stages[npref:], onRow)
			p.runMorsels(ms, p.stages[:npref], head)
			head.flush()
			return nil
		}
	}
	head := p.wireChain(p.stages, onRow)
	p.src.run(head.push)
	head.flush()
	return nil
}

// wireChain wires stages back-to-front into a rowSink terminal. The
// input state is the source's: callers passing a stage suffix may only
// drop state-preserving stages (filters) from the front.
func (p *Pipeline) wireChain(stages []stage, onRow func(mmvalue.Value) bool) batchSink {
	var head batchSink = &rowSink{fn: onRow}
	st := p.src.state()
	states := make([]rowState, len(stages))
	for i, s := range stages {
		states[i] = st
		st = s.outState(st)
	}
	// transient[i]: no stage after i retains pushed rows. Terminals
	// never retain (Rows clones on collect), so the last stage always
	// sees a transient downstream.
	transient := true
	for i := len(stages) - 1; i >= 0; i-- {
		head = stages[i].wire(states[i], transient, head)
		transient = transient && !stages[i].retains()
	}
	return head
}

// seedBudget computes the shared row budget for a parallel scan: the
// Limit bound, when every merger-side stage up to the first bounded
// Limit is strictly one-to-one and order-preserving (maps and the
// attach joins are; sorts reorder, group-by collapses). -1 means
// unbudgeted — workers then rely on the stop flag alone. stages is the
// chain the merger runs; leading filters executed inside the workers
// are excluded, which is what makes Filter→Limit budgetable: the
// budget counts post-filter rows, exactly what workers buffer.
func seedBudget(stages []stage) int {
	for _, s := range stages {
		switch st := s.(type) {
		case *limitStage:
			if st.n >= 0 {
				return st.n
			}
			// Unlimited Limit is a no-op: keep walking.
		case *mapStage, *hashJoinStage, *perRowStage:
			// 1:1 and order-preserving: the k-th seed row is the k-th
			// output row.
		default:
			return -1
		}
	}
	return -1
}

// morselGather terminates a worker's in-scan operator chain: it copies
// the surviving rows of each batch into the current morsel's buffer
// and refuses further input once the buffered count reaches the
// worker's budget quota or the shared stop flag rises.
type morselGather struct {
	rb    *rowBuf
	quota int64 // post-filter row cap for this morsel; -1 = unbudgeted
	stop  *atomic.Bool
}

func (g *morselGather) push(b *Batch) bool {
	if b.sel != nil {
		for _, i := range b.sel {
			g.rb.rows = append(g.rb.rows, b.rows[i])
		}
	} else {
		g.rb.rows = append(g.rb.rows, b.rows...)
	}
	if g.quota > 0 && int64(len(g.rb.rows)) >= g.quota {
		return false
	}
	return !g.stop.Load()
}

func (g *morselGather) flush() {}

// runMorsels is the morsel-driven parallel scan. Workers claim morsel
// indexes from a shared atomic cursor, run the chain's leading filters
// in-scan, and buffer each morsel's surviving (shared) rows; the
// caller streams completed morsels through the rest of the operator
// chain in key order, so results are identical to the sequential scan.
// Two shared atomics short-circuit the scan: stop is set as soon as
// the merger chain refuses a batch (any downstream Limit satisfied),
// and remaining — the row budget when a Limit is 1:1-reachable from
// the merge point — caps how many rows a worker buffers before its
// morsel is even merged. Because workers buffer post-filter rows, the
// budget applies to Filter→Limit pipelines too.
//
// Claims are paced by a lookahead window over the merge frontier:
// a worker does not start morsel i until the merger has consumed
// morsel i-window. This bounds both the peak buffered memory
// (window × morsel rows instead of the whole relation) and the wasted
// scan work after an early Limit fires — without the window, fast
// in-memory scans would finish every morsel before the first merged
// batch could raise the stop flag.
func (p *Pipeline) runMorsels(ms *morselScan, prefix []stage, head batchSink) {
	nm := len(ms.ranges)
	workers := p.par
	if workers > nm {
		workers = nm
	}
	budget := seedBudget(p.stages[len(prefix):])
	window := int64(2 * workers)

	var cursor atomic.Int64
	var stop atomic.Bool
	var frontier atomic.Int64 // morsels the merger has consumed
	var remaining atomic.Int64
	remaining.Store(int64(budget))

	bufs := make([]*rowBuf, nm)
	done := make([]chan struct{}, nm)
	for i := range done {
		done[i] = make(chan struct{})
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker wires its own copy of the filter prefix (sink
			// scratch is not shareable) over a gather terminal; filters
			// preserve row state, so the state/transient inputs echo the
			// source contract.
			g := &morselGather{stop: &stop}
			var chain batchSink = g
			for i := len(prefix) - 1; i >= 0; i-- {
				chain = prefix[i].wire(p.src.state(), true, chain)
			}
			srb := getRowBuf(morselSize)
			defer func() { putRowBuf(srb, srb.rows) }()
			var b Batch
			for {
				i := int(cursor.Add(1) - 1)
				if i >= nm {
					return
				}
				// Pace the claim: wait for the merge frontier to come
				// within window morsels. The merger is never more than
				// one blocking push behind, so this spin is short; stop
				// breaks it so abandoned scans are skipped outright.
				for int64(i) >= frontier.Load()+window && !stop.Load() {
					runtime.Gosched()
				}
				// Snapshot the budget: remaining only shrinks (the
				// merger decrements it in morsel order), so it is a
				// safe upper bound on the rows this morsel can
				// contribute.
				quota := int64(-1)
				if budget >= 0 {
					quota = remaining.Load()
				}
				if quota != 0 && !stop.Load() {
					rb := getRowBuf(morselSize)
					g.rb, g.quota = rb, quota
					r := ms.ranges[i]
					ms.scan(r[0], r[1], srb.rows, func(rows []mmvalue.Value) bool {
						b.rows, b.sel = rows, nil
						return chain.push(&b)
					})
					if len(rb.rows) > 0 {
						bufs[i] = rb
					} else {
						putRowBuf(rb, rb.rows)
					}
					g.rb = nil
				}
				close(done[i])
			}
		}()
	}

	// Ordered streaming merge on the caller goroutine. Morsel buffers
	// return to the pool as soon as they are consumed: retaining stages
	// copy row structs out during push, so nothing downstream aliases
	// the buffer afterwards (the sequential scan reuses its seed
	// scratch the same way).
	b := &Batch{}
	for i := 0; i < nm; i++ {
		<-done[i]
		frontier.Store(int64(i + 1))
		rb := bufs[i]
		bufs[i] = nil
		if stop.Load() {
			if rb != nil {
				putRowBuf(rb, rb.rows)
			}
			continue // drain the done channels; workers close them fast
		}
		if rb == nil {
			continue
		}
		rows := rb.rows
		if budget >= 0 {
			if rem := remaining.Load(); int64(len(rows)) > rem {
				rows = rows[:rem]
			}
		}
		for start := 0; start < len(rows); start += batchCap {
			end := start + batchCap
			if end > len(rows) {
				end = len(rows)
			}
			b.rows, b.sel = rows[start:end], nil
			n := int64(b.Len())
			ok := head.push(b)
			if budget >= 0 {
				remaining.Add(-n)
			}
			if !ok {
				stop.Store(true)
				break
			}
		}
		putRowBuf(rb, rb.rows)
	}
	wg.Wait()
}
