package udbms

import (
	"sort"
	"sync"

	"udbench/internal/document"
	"udbench/internal/graph"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/txn"
)

// This file is the streaming execution engine behind Pipeline: a
// push-based operator chain that is only evaluated when a terminal
// (Rows, Count, Each) pulls it.
//
// Ownership model. Source operators emit rows that are *shared* with
// the underlying stores — no clone is taken during execution. Each
// stage declares how it changes ownership:
//
//   - rowShared:  the row aliases store memory entirely; read-only.
//   - rowShallow: the top-level object is owned (fields can be added)
//     but nested values may still alias the store.
//   - rowOwned:   deep-cloned, fully owned by the pipeline.
//
// Join stages shallow-clone on demand before attaching match arrays;
// Map deep-clones before handing the row to user code. Rows() deep-
// clones anything not already rowOwned on the way out, so the public
// contract ("returned rows are yours to mutate") is unchanged while
// Count/Each and dropped rows (Limit) never pay for a clone.

type rowState uint8

const (
	rowShared rowState = iota
	rowShallow
	rowOwned
)

// sink consumes a row stream. push reports false to stop the upstream
// producer early (limit short-circuit); flush signals end-of-input so
// buffering stages (sorts, adaptive joins) can drain downstream.
type sink interface {
	push(row mmvalue.Value) bool
	flush()
}

type funcSink struct {
	fn func(mmvalue.Value) bool
	fl func()
}

func (s *funcSink) push(row mmvalue.Value) bool { return s.fn(row) }
func (s *funcSink) flush() {
	if s.fl != nil {
		s.fl()
	}
}

// stage is one compiled pipeline operator.
type stage interface {
	// outState reports the ownership of rows this stage emits, given
	// the ownership of rows it receives.
	outState(in rowState) rowState
	// retains reports whether the stage may hold on to pushed rows
	// beyond the push call (buffering sorts and adaptive joins do).
	// When nothing downstream retains, upstream attach stages recycle
	// a scratch row object instead of shallow-cloning per row.
	retains() bool
	// wire builds this stage's sink in front of down. transient is
	// true when no downstream consumer retains pushed rows.
	wire(in rowState, transient bool, down sink) sink
}

// source produces the seed row stream.
type source interface {
	state() rowState
	run(emit func(mmvalue.Value) bool)
	// partitions splits the scan into independent ranges for parallel
	// execution; nil means the source does not support partitioning
	// (index routes and graph scans).
	partitions(n int) []func(emit func(mmvalue.Value) bool)
}

// ---- sources ----

type relSource struct {
	t     *relational.Table
	tx    *txn.Tx
	where relational.Expr
}

func (s *relSource) state() rowState { return rowShared }

func (s *relSource) run(emit func(mmvalue.Value) bool) {
	s.t.Stream(s.tx, s.where, emit)
}

func (s *relSource) partitions(n int) []func(emit func(mmvalue.Value) bool) {
	if s.where != nil && s.t.UsesIndex(s.where) {
		return nil // index route: already sub-linear, not worth splitting
	}
	return rangeParts(s.t.SplitPoints(n), func(from, to string, emit func(mmvalue.Value) bool) {
		s.t.StreamRange(s.tx, from, to, s.where, emit)
	})
}

type docSource struct {
	c      *document.Collection
	tx     *txn.Tx
	filter document.Filter
}

func (s *docSource) state() rowState { return rowShared }

func (s *docSource) run(emit func(mmvalue.Value) bool) {
	s.c.Stream(s.tx, s.filter, emit)
}

func (s *docSource) partitions(n int) []func(emit func(mmvalue.Value) bool) {
	if s.filter != nil && s.c.UsesIndex(s.filter) {
		return nil
	}
	return rangeParts(s.c.SplitPoints(n), func(from, to string, emit func(mmvalue.Value) bool) {
		s.c.StreamRange(s.tx, from, to, s.filter, emit)
	})
}

// rangeParts turns split boundaries into per-range scan closures.
func rangeParts(bounds []string, scan func(from, to string, emit func(mmvalue.Value) bool)) []func(emit func(mmvalue.Value) bool) {
	if len(bounds) == 0 {
		return nil
	}
	edges := append(append([]string{""}, bounds...), "")
	parts := make([]func(emit func(mmvalue.Value) bool), len(edges)-1)
	for i := 0; i < len(edges)-1; i++ {
		from, to := edges[i], edges[i+1]
		parts[i] = func(emit func(mmvalue.Value) bool) { scan(from, to, emit) }
	}
	return parts
}

type graphSource struct {
	g     *graph.Store
	tx    *txn.Tx
	label string
	ok    func(graph.Vertex) bool
}

// Graph vertex rows are built fresh (cloned props + _vid/_label), so
// they are owned from the start.
func (s *graphSource) state() rowState { return rowOwned }

func (s *graphSource) run(emit func(mmvalue.Value) bool) {
	s.g.Vertices(s.tx, func(v graph.Vertex) bool {
		if s.label != "" && v.Label != s.label {
			return true
		}
		if s.ok != nil && !s.ok(v) {
			return true
		}
		row := v.Props.Clone().MustObject()
		row.Set("_vid", mmvalue.String(string(v.ID)))
		row.Set("_label", mmvalue.String(v.Label))
		return emit(mmvalue.FromObject(row))
	})
}

func (s *graphSource) partitions(int) []func(emit func(mmvalue.Value) bool) { return nil }

// ---- simple stages ----

type filterStage struct {
	keep func(mmvalue.Value) bool
}

func (st *filterStage) outState(in rowState) rowState { return in }
func (st *filterStage) retains() bool                 { return false }

func (st *filterStage) wire(_ rowState, _ bool, down sink) sink {
	return &funcSink{
		fn: func(r mmvalue.Value) bool {
			if !st.keep(r) {
				return true
			}
			return down.push(r)
		},
		fl: down.flush,
	}
}

type mapStage struct {
	fn func(mmvalue.Value) mmvalue.Value
}

func (st *mapStage) outState(rowState) rowState { return rowOwned }
func (st *mapStage) retains() bool              { return false }

func (st *mapStage) wire(in rowState, _ bool, down sink) sink {
	return &funcSink{
		fn: func(r mmvalue.Value) bool {
			if in != rowOwned {
				r = r.Clone()
			}
			return down.push(st.fn(r))
		},
		fl: down.flush,
	}
}

type limitStage struct {
	n int
}

func (st *limitStage) outState(in rowState) rowState { return in }
func (st *limitStage) retains() bool                 { return false }

func (st *limitStage) wire(_ rowState, _ bool, down sink) sink {
	if st.n < 0 {
		return down
	}
	remaining := st.n
	return &funcSink{
		fn: func(r mmvalue.Value) bool {
			if remaining <= 0 {
				return false
			}
			remaining--
			return down.push(r) && remaining > 0
		},
		fl: down.flush,
	}
}

// sortStage is a blocking operator: it buffers the whole input, sorts
// it, and re-streams on flush. Rows stay shared — sorting reorders
// references only.
type sortStage struct {
	path mmvalue.Path
	desc bool
}

func (st *sortStage) outState(in rowState) rowState { return in }
func (st *sortStage) retains() bool                 { return true }

func (st *sortStage) wire(_ rowState, _ bool, down sink) sink {
	var buf []mmvalue.Value
	return &funcSink{
		fn: func(r mmvalue.Value) bool {
			buf = append(buf, r)
			return true
		},
		fl: func() {
			sort.SliceStable(buf, func(i, j int) bool {
				a := st.path.LookupOr(buf[i], mmvalue.Null)
				b := st.path.LookupOr(buf[j], mmvalue.Null)
				if st.desc {
					return mmvalue.Compare(a, b) > 0
				}
				return mmvalue.Compare(a, b) < 0
			})
			for _, r := range buf {
				if !down.push(r) {
					break
				}
			}
			down.flush()
		},
	}
}

// ---- hash join machinery ----

// hashTable buckets build-side records by mmvalue.Hash of their join
// key — an allocation-free hash consistent with mmvalue.Equal. Probes
// re-verify with mmvalue.Equal, so hash collisions cannot produce
// wrong matches: the join is exactly equality in the mmvalue.Compare
// sense, like the nested-loop predicates it replaces.
type hashTable struct {
	buckets map[uint64][]*hashGroup
}

type hashGroup struct {
	key  mmvalue.Value
	vals []mmvalue.Value
}

func newHashTable(sizeHint int) *hashTable {
	return &hashTable{buckets: make(map[uint64][]*hashGroup, sizeHint)}
}

func (h *hashTable) add(key, val mmvalue.Value) {
	k := key.Hash()
	for _, g := range h.buckets[k] {
		if mmvalue.Equal(g.key, key) {
			g.vals = append(g.vals, val)
			return
		}
	}
	h.buckets[k] = append(h.buckets[k], &hashGroup{key: key, vals: []mmvalue.Value{val}})
}

func (h *hashTable) get(key mmvalue.Value) []mmvalue.Value {
	for _, g := range h.buckets[key.Hash()] {
		if mmvalue.Equal(g.key, key) {
			return g.vals
		}
	}
	return nil
}

// joinSpec abstracts the build side of an equality join (document
// collection or relational table).
type joinSpec struct {
	// rowField is the flat field of the pipeline row holding the key.
	rowField string
	// asField receives the match array.
	asField string
	// buildLen approximates the build-side size (for strategy choice).
	buildLen int
	// build scans the build side once into a hash table.
	build func() *hashTable
	// indexProbe fetches matches for one key through a store index;
	// nil when the build side has no usable index.
	indexProbe func(key mmvalue.Value) []mmvalue.Value
}

// hashJoinStage joins the row stream against a build side. It is a
// blocking operator: probe rows are buffered (shared references, no
// copies) until the input ends, then the strategy is picked from the
// exact probe count — a small probe set against an indexed build side
// uses per-row index lookups, anything else scans the build side once
// into a hash table. Deferring the build-side scan to flush also
// guarantees it never nests inside the still-open seed scan, so
// self-joins cannot deadlock on the store's scan lock.
type hashJoinStage struct {
	spec joinSpec
}

func (st *hashJoinStage) outState(rowState) rowState {
	// Matches are attached as shared store values, so the row is at
	// most shallow-owned afterwards.
	return rowShallow
}

// The adaptive strategy buffers probe rows before deciding.
func (st *hashJoinStage) retains() bool { return true }

func (st *hashJoinStage) wire(in rowState, transient bool, down sink) sink {
	threshold := 0
	if st.spec.indexProbe != nil {
		threshold = st.spec.buildLen / 8
		if threshold < 4 {
			threshold = 4
		}
		if threshold > 1024 {
			threshold = 1024
		}
	}
	j := &joinSink{spec: st.spec, in: in, down: down, threshold: threshold}
	if transient {
		j.scratch = mmvalue.NewObject()
	}
	return j
}

type joinSink struct {
	spec      joinSpec
	in        rowState
	down      sink
	threshold int
	buf       []mmvalue.Value
	ht        *hashTable
	stopped   bool
	// scratch, when non-nil, is the recycled output row: downstream
	// consumes rows transiently, so every emitted row may reuse the
	// same object (zero allocations in steady state).
	scratch *mmvalue.Object
}

// attach lands matches under asField without ever mutating a shared
// store row: shared inputs are copied into the scratch object (when
// downstream is transient) or shallow-cloned (when rows are retained).
func (j *joinSink) attach(r mmvalue.Value, matches []mmvalue.Value) bool {
	obj := r.MustObject()
	if j.in == rowShared {
		if j.scratch != nil {
			j.scratch.CopyFrom(obj)
			obj = j.scratch
		} else {
			obj = obj.ShallowClone()
		}
		r = mmvalue.FromObject(obj)
	}
	obj.Set(j.spec.asField, mmvalue.Array(matches...))
	ok := j.down.push(r)
	if !ok {
		j.stopped = true
	}
	return ok
}

func (j *joinSink) emitHashed(r mmvalue.Value) bool {
	key := r.MustObject().GetOr(j.spec.rowField, mmvalue.Null)
	var matches []mmvalue.Value
	if !key.IsNull() {
		matches = j.ht.get(key)
	}
	return j.attach(r, matches)
}

func (j *joinSink) emitIndexed(r mmvalue.Value) bool {
	key := r.MustObject().GetOr(j.spec.rowField, mmvalue.Null)
	var matches []mmvalue.Value
	if !key.IsNull() {
		matches = j.spec.indexProbe(key)
	}
	return j.attach(r, matches)
}

func (j *joinSink) push(r mmvalue.Value) bool {
	if j.stopped {
		return false
	}
	j.buf = append(j.buf, r)
	return true
}

func (j *joinSink) flush() {
	if !j.stopped {
		if j.spec.indexProbe != nil && len(j.buf) < j.threshold {
			// Small probe set: index probes beat a full build-side
			// scan.
			for _, b := range j.buf {
				if !j.emitIndexed(b) {
					break
				}
			}
		} else if len(j.buf) > 0 {
			j.ht = j.spec.build()
			for _, b := range j.buf {
				if !j.emitHashed(b) {
					break
				}
			}
		}
		j.buf = nil
	}
	j.down.flush()
}

// perRowStage covers the probe-only joins (KV prefix, XML, graph
// expansion): each row triggers one bounded store lookup, and the
// fetched values are attached under asField.
type perRowStage struct {
	// fetch returns the values to attach for the row. attached values
	// may alias store memory (ownedVals=false) or be freshly built
	// (ownedVals=true).
	fetch     func(row mmvalue.Value) []mmvalue.Value
	asField   string
	ownedVals bool
}

func (st *perRowStage) outState(in rowState) rowState {
	if !st.ownedVals {
		return rowShallow
	}
	if in == rowShared {
		return rowShallow
	}
	return in
}

func (st *perRowStage) retains() bool { return false }

func (st *perRowStage) wire(in rowState, transient bool, down sink) sink {
	var scratch *mmvalue.Object
	if transient {
		scratch = mmvalue.NewObject()
	}
	return &funcSink{
		fn: func(r mmvalue.Value) bool {
			vals := st.fetch(r)
			obj := r.MustObject()
			if in == rowShared {
				if scratch != nil {
					scratch.CopyFrom(obj)
					obj = scratch
				} else {
					obj = obj.ShallowClone()
				}
				r = mmvalue.FromObject(obj)
			}
			obj.Set(st.asField, mmvalue.Array(vals...))
			return down.push(r)
		},
		fl: down.flush,
	}
}

// ---- plan compilation and execution ----

// finalState computes the ownership of rows leaving the last stage.
func (p *Pipeline) finalState() rowState {
	if p.src == nil {
		return rowOwned
	}
	st := p.src.state()
	for _, s := range p.stages {
		st = s.outState(st)
	}
	return st
}

// execute compiles the operator chain and streams the final rows into
// onRow. Rows passed to onRow follow the pipeline's final ownership
// state — Rows() clones them as needed, Count/Each never do.
func (p *Pipeline) execute(onRow func(mmvalue.Value) bool) error {
	if p.err != nil {
		return p.err
	}
	if p.src == nil {
		return nil
	}
	var head sink = &funcSink{fn: onRow}
	st := p.src.state()
	states := make([]rowState, len(p.stages))
	for i, s := range p.stages {
		states[i] = st
		st = s.outState(st)
	}
	// transient[i]: no stage after i retains pushed rows. Terminals
	// never retain (Rows clones on collect), so the last stage always
	// sees a transient downstream.
	transient := true
	for i := len(p.stages) - 1; i >= 0; i-- {
		head = p.stages[i].wire(states[i], transient, head)
		transient = transient && !p.stages[i].retains()
	}
	if p.par > 1 {
		if parts := p.src.partitions(p.par); len(parts) > 1 {
			p.runParallel(parts, head)
			head.flush()
			return nil
		}
	}
	p.src.run(head.push)
	head.flush()
	return nil
}

// runParallel scans source partitions concurrently, buffering each
// partition's (shared) rows, then streams the buffers through the
// operator chain in partition order — an ordered merge, so results are
// identical to the sequential scan.
func (p *Pipeline) runParallel(parts []func(emit func(mmvalue.Value) bool), head sink) {
	bufs := make([][]mmvalue.Value, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part func(emit func(mmvalue.Value) bool)) {
			defer wg.Done()
			part(func(r mmvalue.Value) bool {
				bufs[i] = append(bufs[i], r)
				return true
			})
		}(i, part)
	}
	wg.Wait()
	for _, buf := range bufs {
		for _, r := range buf {
			if !head.push(r) {
				return
			}
		}
	}
}
