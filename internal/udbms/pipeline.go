package udbms

import (
	"fmt"

	"udbench/internal/document"
	"udbench/internal/graph"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/txn"
	"udbench/internal/xmlstore"
)

// Pipeline is a fluent multi-model query: it starts from one model and
// hops across the others, carrying a working set of row objects. All
// stages read under the same transaction snapshot, which is the core
// capability a unified engine offers over a federation.
//
// Each stage transforms the working set; errors are deferred to Rows.
type Pipeline struct {
	db   *DB
	tx   *txn.Tx
	rows []mmvalue.Value
	err  error
}

// Pipeline starts an empty pipeline under tx (nil = latest committed).
func (db *DB) Pipeline(tx *txn.Tx) *Pipeline {
	return &Pipeline{db: db, tx: tx}
}

// Err returns the first error the pipeline encountered.
func (p *Pipeline) Err() error { return p.err }

// Rows returns the current working set.
func (p *Pipeline) Rows() ([]mmvalue.Value, error) { return p.rows, p.err }

// Count returns the size of the working set.
func (p *Pipeline) Count() (int, error) { return len(p.rows), p.err }

// FromRelational seeds the pipeline with rows of the named table
// matching the predicate (nil = all rows).
func (p *Pipeline) FromRelational(table string, where relational.Expr) *Pipeline {
	if p.err != nil {
		return p
	}
	t, ok := p.db.Relational.Table(table)
	if !ok {
		p.err = fmt.Errorf("udbms: no table %q", table)
		return p
	}
	q := t.Query(p.tx)
	if where != nil {
		q = q.Where(where)
	}
	p.rows = q.Rows()
	return p
}

// FromDocuments seeds the pipeline with documents of the named
// collection matching the filter (nil = all documents).
func (p *Pipeline) FromDocuments(collection string, filter document.Filter) *Pipeline {
	if p.err != nil {
		return p
	}
	p.rows = p.db.Docs.Collection(collection).Find(p.tx, filter, nil)
	return p
}

// FromGraphVertices seeds the pipeline with graph vertices whose label
// matches (""=any) and whose properties satisfy ok (nil=all). Each row
// is the vertex property object extended with "_vid" and "_label".
func (p *Pipeline) FromGraphVertices(label string, ok func(graph.Vertex) bool) *Pipeline {
	if p.err != nil {
		return p
	}
	p.rows = p.rows[:0]
	p.db.Graph.Vertices(p.tx, func(v graph.Vertex) bool {
		if label != "" && v.Label != label {
			return true
		}
		if ok != nil && !ok(v) {
			return true
		}
		row := v.Props.Clone().MustObject()
		row.Set("_vid", mmvalue.String(string(v.ID)))
		row.Set("_label", mmvalue.String(v.Label))
		p.rows = append(p.rows, mmvalue.FromObject(row))
		return true
	})
	return p
}

// Filter keeps rows for which keep returns true.
func (p *Pipeline) Filter(keep func(row mmvalue.Value) bool) *Pipeline {
	if p.err != nil {
		return p
	}
	kept := p.rows[:0]
	for _, r := range p.rows {
		if keep(r) {
			kept = append(kept, r)
		}
	}
	p.rows = kept
	return p
}

// Map replaces each row with fn(row).
func (p *Pipeline) Map(fn func(row mmvalue.Value) mmvalue.Value) *Pipeline {
	if p.err != nil {
		return p
	}
	for i, r := range p.rows {
		p.rows[i] = fn(r)
	}
	return p
}

// Limit truncates the working set.
func (p *Pipeline) Limit(n int) *Pipeline {
	if p.err != nil {
		return p
	}
	if n >= 0 && len(p.rows) > n {
		p.rows = p.rows[:n]
	}
	return p
}

// JoinDocuments extends each row with the documents of collection
// whose docPath value equals the row's rowField value; matches land as
// an array under asField. Rows without matches keep an empty array.
// When the collection has an index on docPath it is used per row.
func (p *Pipeline) JoinDocuments(collection, rowField, docPath, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	coll := p.db.Docs.Collection(collection)
	for _, r := range p.rows {
		obj := r.MustObject()
		key := obj.GetOr(rowField, mmvalue.Null)
		var matches []mmvalue.Value
		if !key.IsNull() {
			matches = coll.Find(p.tx, document.Eq(docPath, key), nil)
		}
		obj.Set(asField, mmvalue.Array(matches...))
	}
	return p
}

// JoinRelational extends each row with the rows of table whose column
// equals the row's rowField value, landing under asField as an array.
func (p *Pipeline) JoinRelational(table, rowField, column, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	t, ok := p.db.Relational.Table(table)
	if !ok {
		p.err = fmt.Errorf("udbms: no table %q", table)
		return p
	}
	for _, r := range p.rows {
		obj := r.MustObject()
		key := obj.GetOr(rowField, mmvalue.Null)
		var matches []mmvalue.Value
		if !key.IsNull() {
			matches = t.Query(p.tx).Where(relational.Col(column).Eq(key)).Rows()
		}
		obj.Set(asField, mmvalue.Array(matches...))
	}
	return p
}

// JoinKVPrefix extends each row with all key-value pairs whose key has
// prefix prefixFn(row), landing under asField as an array of
// {key, value} objects.
func (p *Pipeline) JoinKVPrefix(prefixFn func(row mmvalue.Value) string, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	for _, r := range p.rows {
		obj := r.MustObject()
		var matches []mmvalue.Value
		p.db.KV.ScanPrefix(p.tx, prefixFn(r), func(k string, v mmvalue.Value) bool {
			matches = append(matches, mmvalue.ObjectOf("key", k, "value", v.Clone()))
			return true
		})
		obj.Set(asField, mmvalue.Array(matches...))
	}
	return p
}

// JoinXML evaluates the XPath against the XML document idFn(row) names
// and lands the string results under asField.
func (p *Pipeline) JoinXML(idFn func(row mmvalue.Value) string, xpath string, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	xp, err := xmlstore.CompileXPath(xpath)
	if err != nil {
		p.err = err
		return p
	}
	for _, r := range p.rows {
		obj := r.MustObject()
		var vals []mmvalue.Value
		if doc, ok := p.db.XML.Get(p.tx, idFn(r)); ok {
			for _, s := range xp.SelectValues(doc) {
				vals = append(vals, mmvalue.String(s))
			}
		}
		obj.Set(asField, mmvalue.Array(vals...))
	}
	return p
}

// ExpandGraph replaces each row's vertex neighbourhood: for the vertex
// named by vidFn(row), the ids of vertices within k hops over label in
// direction dir land under asField as an array of strings.
func (p *Pipeline) ExpandGraph(vidFn func(row mmvalue.Value) string, k int, dir graph.Dir, label, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	for _, r := range p.rows {
		obj := r.MustObject()
		hops := p.db.Graph.KHop(p.tx, graph.VID(vidFn(r)), k, dir, label)
		vals := make([]mmvalue.Value, len(hops))
		for i, h := range hops {
			vals[i] = mmvalue.String(string(h))
		}
		obj.Set(asField, mmvalue.Array(vals...))
	}
	return p
}
