package udbms

import (
	"fmt"

	"udbench/internal/document"
	"udbench/internal/graph"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/txn"
	"udbench/internal/xmlstore"
)

// Pipeline is a fluent multi-model query: it starts from one model and
// hops across the others. All stages read under the same transaction
// snapshot, which is the core capability a unified engine offers over a
// federation.
//
// Execution is lazy, streaming and vectorized: stages build an
// operator tree that is only evaluated when a terminal — Rows, Count
// or Each — pulls it, and operators exchange column batches of up to
// 1024 rows rather than single rows (see exec.go). Limit
// short-circuits upstream operators, filters narrow batches through a
// selection vector against shared store memory without copying, and
// the cross-model joins build a hash table over the smaller side
// (falling back to store indexes when the probe set is small). Rows
// returned by Rows are deep copies and may be mutated freely; Filter
// predicates and Each callbacks observe shared rows and must not
// mutate them.
//
// Build errors (unknown table, bad XPath) are deferred to the
// terminals and visible early via Err.
type Pipeline struct {
	db  *DB
	tx  *txn.Tx
	err error
	src source
	// stages apply in order between the source and the terminal.
	stages []stage
	// par is the seed-scan parallelism degree (<=1 = sequential).
	par int
}

// Pipeline starts an empty pipeline under tx (nil = latest committed).
func (db *DB) Pipeline(tx *txn.Tx) *Pipeline {
	return &Pipeline{db: db, tx: tx}
}

// Err returns the first error the pipeline encountered while building.
func (p *Pipeline) Err() error { return p.err }

// Rows executes the pipeline and returns the result rows. The rows are
// fully owned by the caller and may be mutated freely. Calling Rows
// (or Count/Each) again re-executes the pipeline.
func (p *Pipeline) Rows() ([]mmvalue.Value, error) {
	owned := p.finalState() == rowOwned
	var out []mmvalue.Value
	if err := p.execute(func(r mmvalue.Value) bool {
		if !owned {
			// Copy on collect: upstream operators may recycle row
			// storage, and shared rows must not leak store memory.
			r = r.Clone()
		}
		out = append(out, r)
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Count executes the pipeline and returns the number of result rows
// without materializing (or copying) any of them.
func (p *Pipeline) Count() (int, error) {
	n := 0
	err := p.execute(func(mmvalue.Value) bool {
		n++
		return true
	})
	return n, err
}

// Each streams the result rows to fn, stopping early when fn returns
// false. The rows may alias store memory: they are valid for reading
// during the callback and must not be mutated or retained. This is the
// zero-copy terminal for aggregations.
func (p *Pipeline) Each(fn func(row mmvalue.Value) bool) error {
	return p.execute(fn)
}

// Parallel runs the seed scan morsel-driven across n goroutines: the
// key space is pre-split into fixed-size morsels and workers claim
// them from a shared cursor, so a skewed predicate cannot straggle one
// worker. Completed morsels merge in key order — results are identical
// to the sequential scan. It applies to full-scan relational/document
// seeds; index-served seeds and graph scans ignore it. Limit
// short-circuits across workers: a shared atomic row budget (or, for
// limits behind filters/sorts, a shared stop flag) halts morsel
// claiming as soon as the limit is satisfied, so unneeded morsels are
// never scanned. The seed predicate (the relational.Expr or
// document.Filter passed to From*) is evaluated concurrently from the
// worker goroutines, so it must be safe for concurrent use — stateless
// predicates (all the Eq/Lt/All/... constructors and the uql pushdown
// output) are; a stateful Func closure is not. Later stages (Filter,
// Map, joins, GroupBy) run sequentially after the merge and are
// unaffected.
func (p *Pipeline) Parallel(n int) *Pipeline {
	p.par = n
	return p
}

// FromRelational seeds the pipeline with rows of the named table
// matching the predicate (nil = all rows). Equality predicates on the
// primary key or an indexed column are served from the index.
func (p *Pipeline) FromRelational(table string, where relational.Expr) *Pipeline {
	if p.err != nil {
		return p
	}
	t, ok := p.db.Relational.Table(table)
	if !ok {
		p.err = fmt.Errorf("udbms: no table %q", table)
		return p
	}
	p.src = &relSource{t: t, tx: p.tx, where: where}
	return p
}

// FromDocuments seeds the pipeline with documents of the named
// collection matching the filter (nil = all documents). Filters that
// pin an indexed path are served from the index.
func (p *Pipeline) FromDocuments(collection string, filter document.Filter) *Pipeline {
	if p.err != nil {
		return p
	}
	p.src = &docSource{c: p.db.Docs.Collection(collection), tx: p.tx, filter: filter}
	return p
}

// FromGraphVertices seeds the pipeline with graph vertices whose label
// matches (""=any) and whose properties satisfy ok (nil=all). Each row
// is the vertex property object extended with "_vid" and "_label".
func (p *Pipeline) FromGraphVertices(label string, ok func(graph.Vertex) bool) *Pipeline {
	if p.err != nil {
		return p
	}
	p.src = &graphSource{g: p.db.Graph, tx: p.tx, label: label, ok: ok}
	return p
}

// Filter keeps rows for which keep returns true. The predicate runs
// against shared rows and must not mutate them.
func (p *Pipeline) Filter(keep func(row mmvalue.Value) bool) *Pipeline {
	if p.err != nil {
		return p
	}
	p.stages = append(p.stages, &filterStage{keep: keep})
	return p
}

// Map replaces each row with fn(row). fn receives a private copy and
// may mutate it freely.
func (p *Pipeline) Map(fn func(row mmvalue.Value) mmvalue.Value) *Pipeline {
	if p.err != nil {
		return p
	}
	p.stages = append(p.stages, &mapStage{fn: fn})
	return p
}

// Limit truncates the result to the first n rows; upstream operators
// stop as soon as the limit is satisfied (blocking stages — SortBy and
// the hash joins — buffer their input first and only stop emitting).
// Negative n means unlimited.
func (p *Pipeline) Limit(n int) *Pipeline {
	if p.err != nil {
		return p
	}
	p.stages = append(p.stages, &limitStage{n: n})
	return p
}

// SortBy orders rows by the value at the dotted path (stable). Sort is
// a blocking stage: it buffers its input before downstream stages see
// any row, so a following Limit implements top-N.
func (p *Pipeline) SortBy(path string, descending bool) *Pipeline {
	if p.err != nil {
		return p
	}
	p.stages = append(p.stages, &sortStage{path: mmvalue.ParsePath(path), desc: descending})
	return p
}

// GroupBy folds the row stream into one row per distinct value at
// keyPath (missing values group under null), computing the given
// aggregates per group — see Sum, Count, Min, Max, Avg. Each output
// row is fully owned and has the shape {asKey: key, <agg fields>...};
// rows stream out in ascending key order (mmvalue.Compare), so results
// are deterministic. GroupBy is a blocking stage like SortBy: it
// buffers accumulators until the input ends, then a following Filter
// acts as a HAVING clause and SortBy+Limit as top-N over aggregates.
func (p *Pipeline) GroupBy(keyPath, asKey string, aggs ...Agg) *Pipeline {
	if p.err != nil {
		return p
	}
	p.stages = append(p.stages, &groupStage{key: mmvalue.ParsePath(keyPath), asKey: asKey, aggs: aggs})
	return p
}

// JoinDocuments extends each row with the documents of collection
// whose docPath value equals the row's rowField value; matches land as
// an array under asField. Rows without matches keep an empty array;
// null row keys match nothing. The join is executed as a build-once
// hash join over the collection unless the probe set is small and the
// collection has an index on docPath, in which case it falls back to
// per-row index lookups. The build side is only scanned after the
// seed scan completes, so joining a collection with itself is safe.
func (p *Pipeline) JoinDocuments(collection, rowField, docPath, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	coll := p.db.Docs.Collection(collection)
	pp := mmvalue.ParsePath(docPath)
	scan := func(tx *txn.Tx) *hashTable {
		ht := newHashTable(coll.Len())
		coll.Stream(tx, nil, func(doc mmvalue.Value) bool {
			if v, ok := pp.Lookup(doc); ok && !v.IsNull() {
				ht.add(v, doc)
			}
			return true
		})
		return ht
	}
	key := joinCacheKey{store: coll, field: docPath}
	spec := joinSpec{
		rowField: rowField,
		asField:  asField,
		buildLen: coll.Len(),
		build:    func() *hashTable { return scan(p.tx) },
		cacheGet: func() *hashTable { return p.db.joins.get(key, coll.Version(), p.tx) },
		cachePut: func() *hashTable {
			return p.db.joins.put(key, coll.Manager(), coll.Version, p.tx, scan)
		},
	}
	if coll.HasIndex(docPath) {
		spec.indexProbe = func(key mmvalue.Value) []mmvalue.Value {
			var matches []mmvalue.Value
			coll.Stream(p.tx, document.Eq(docPath, key), func(doc mmvalue.Value) bool {
				matches = append(matches, doc)
				return true
			})
			return matches
		}
	}
	p.stages = append(p.stages, &hashJoinStage{spec: spec})
	return p
}

// JoinRelational extends each row with the rows of table whose column
// equals the row's rowField value, landing under asField as an array.
// Like JoinDocuments it is a build-once hash join with a fallback to
// primary-key or secondary-index lookups for small probe sets.
func (p *Pipeline) JoinRelational(table, rowField, column, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	t, ok := p.db.Relational.Table(table)
	if !ok {
		p.err = fmt.Errorf("udbms: no table %q", table)
		return p
	}
	scan := func(tx *txn.Tx) *hashTable {
		ht := newHashTable(t.Len())
		t.Stream(tx, nil, func(row mmvalue.Value) bool {
			if v, ok := row.MustObject().Get(column); ok && !v.IsNull() {
				ht.add(v, row)
			}
			return true
		})
		return ht
	}
	key := joinCacheKey{store: t, field: column}
	spec := joinSpec{
		rowField: rowField,
		asField:  asField,
		buildLen: t.Len(),
		build:    func() *hashTable { return scan(p.tx) },
		cacheGet: func() *hashTable { return p.db.joins.get(key, t.Version(), p.tx) },
		cachePut: func() *hashTable {
			return p.db.joins.put(key, t.Manager(), t.Version, p.tx, scan)
		},
	}
	if t.UsesIndex(relational.Col(column).Eq(0)) {
		spec.indexProbe = func(key mmvalue.Value) []mmvalue.Value {
			var matches []mmvalue.Value
			t.Stream(p.tx, relational.Col(column).Eq(key), func(row mmvalue.Value) bool {
				matches = append(matches, row)
				return true
			})
			return matches
		}
	}
	p.stages = append(p.stages, &hashJoinStage{spec: spec})
	return p
}

// JoinKVPrefix extends each row with all key-value pairs whose key has
// prefix prefixFn(row), landing under asField as an array of
// {key, value} objects. Each row costs one bounded skip-list seek —
// the key-value store's native prefix index.
func (p *Pipeline) JoinKVPrefix(prefixFn func(row mmvalue.Value) string, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	p.stages = append(p.stages, &perRowStage{
		asField: asField,
		fetch: func(r mmvalue.Value) []mmvalue.Value {
			var matches []mmvalue.Value
			p.db.KV.ScanPrefix(p.tx, prefixFn(r), func(k string, v mmvalue.Value) bool {
				matches = append(matches, mmvalue.ObjectOf("key", k, "value", v))
				return true
			})
			return matches
		},
	})
	return p
}

// JoinXML evaluates the XPath against the XML document idFn(row) names
// and lands the string results under asField.
func (p *Pipeline) JoinXML(idFn func(row mmvalue.Value) string, xpath string, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	xp, err := xmlstore.CompileXPath(xpath)
	if err != nil {
		p.err = err
		return p
	}
	p.stages = append(p.stages, &perRowStage{
		asField:   asField,
		ownedVals: true,
		fetch: func(r mmvalue.Value) []mmvalue.Value {
			var vals []mmvalue.Value
			if doc, ok := p.db.XML.Get(p.tx, idFn(r)); ok {
				for _, s := range xp.SelectValues(doc) {
					vals = append(vals, mmvalue.String(s))
				}
			}
			return vals
		},
	})
	return p
}

// ExpandGraph replaces each row's vertex neighbourhood: for the vertex
// named by vidFn(row), the ids of vertices within k hops over label in
// direction dir land under asField as an array of strings.
func (p *Pipeline) ExpandGraph(vidFn func(row mmvalue.Value) string, k int, dir graph.Dir, label, asField string) *Pipeline {
	if p.err != nil {
		return p
	}
	p.stages = append(p.stages, &perRowStage{
		asField:   asField,
		ownedVals: true,
		fetch: func(r mmvalue.Value) []mmvalue.Value {
			hops := p.db.Graph.KHop(p.tx, graph.VID(vidFn(r)), k, dir, label)
			vals := make([]mmvalue.Value, len(hops))
			for i, h := range hops {
				vals[i] = mmvalue.String(string(h))
			}
			return vals
		},
	})
	return p
}
