// Package udbms is the unified multi-model database engine of UDBench —
// the system-under-test that the paper's benchmark targets. It binds
// the five UDBMS data models (relational, JSON document, property
// graph, key-value, XML) to one transaction manager, giving:
//
//   - cross-model ACID transactions: one lock space, one commit point,
//     so an order update can atomically touch JSON Orders, key-value
//     Feedback and XML Invoice (the paper's running example);
//   - cross-model snapshot reads: a single begin timestamp covers all
//     five models, so analytical queries see one consistent cut;
//   - a pipeline API for multi-model queries that hop between models.
//
// # Vectorized executor
//
// Pipeline queries compile into a push-based chain of operators that
// exchange column batches instead of single rows. A Batch (batch.go)
// carries up to 1024 row values plus an optional selection vector;
// filters narrow a batch by rewriting the selection vector in place —
// no row is copied or re-pushed — so a scan→filter→count pipeline does
// one interface dispatch per 1024 rows rather than per row. Sorts and
// joins extract key columns once per batch; group-by aggregates
// (sum/count/min/max/avg) fold batches into a hash of accumulators.
//
// Seed scans stream rows straight out of store memory in batches,
// using pooled scratch buffers so a steady-state query allocates a
// near-constant few hundred bytes regardless of rows scanned. Rows
// stay shared with the store until a stage needs ownership (the
// rowState protocol in exec.go); Rows() clones on the way out, while
// Count/Each and rows dropped by Limit never pay for a clone.
//
// Parallel(n) switches the seed scan to morsel-driven parallelism: the
// key space is pre-split into ~256-row morsels and n workers claim
// them from a shared atomic cursor, so skew cannot straggle a worker.
// Leading Filter stages execute inside the workers; surviving rows
// merge in key order, making results bit-identical to the sequential
// scan. A shared atomic row budget derived from a downstream Limit —
// plus a stop flag raised when the merged chain refuses a batch —
// short-circuits workers across the whole scan (see runMorsels).
//
// Equality joins between models build a hash table over the build side
// and probe it per batch; small probe sets fall back to store indexes.
// Build-side hash tables are memoized across queries in a version-
// keyed cache (joincache.go): every committed write bumps a per-store
// version counter before it becomes visible, so an unchanged counter
// certifies an unchanged build side and read-heavy workloads skip the
// rebuild entirely.
package udbms
