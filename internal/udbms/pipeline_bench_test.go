package udbms

import (
	"fmt"
	"math/rand"
	"testing"

	"udbench/internal/mmvalue"
)

// benchJoinDB builds nProbe probe docs and nBuild build docs with
// int keys in [0, nBuild/4), so every probe row matches ~4 documents.
func benchJoinDB(b *testing.B, nProbe, nBuild int, indexed bool) *DB {
	b.Helper()
	db := Open()
	rng := rand.New(rand.NewSource(1))
	keyDomain := nBuild / 4
	if keyDomain == 0 {
		keyDomain = 1
	}
	probe := db.Docs.Collection("probe")
	for i := 0; i < nProbe; i++ {
		if err := probe.Insert(nil, mmvalue.ObjectOf(
			"_id", fmt.Sprintf("p%05d", i),
			"cid", int64(rng.Intn(keyDomain)),
		)); err != nil {
			b.Fatal(err)
		}
	}
	build := db.Docs.Collection("build")
	for i := 0; i < nBuild; i++ {
		if err := build.Insert(nil, mmvalue.ObjectOf(
			"_id", fmt.Sprintf("b%05d", i),
			"cid", int64(rng.Intn(keyDomain)),
			"payload", fmt.Sprintf("v%06d", i),
		)); err != nil {
			b.Fatal(err)
		}
	}
	if indexed {
		if err := build.CreateIndex("cid"); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkPipelineJoin isolates the cross-model join: streaming
// hash/index join (Count terminal, zero-copy) at several shapes, plus
// the old nested-loop-with-clones strategy as the baseline.
func BenchmarkPipelineJoin(b *testing.B) {
	shapes := []struct {
		name           string
		nProbe, nBuild int
		indexed        bool
	}{
		{"probe10/build1000/indexed", 10, 1000, true},   // index-probe strategy
		{"probe500/build1000/indexed", 500, 1000, true}, // hash despite index
		{"probe500/build1000/scan", 500, 1000, false},   // hash, no index
	}
	for _, sh := range shapes {
		db := benchJoinDB(b, sh.nProbe, sh.nBuild, sh.indexed)
		b.Run(sh.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				matched := 0
				err := db.Pipeline(nil).
					FromDocuments("probe", nil).
					JoinDocuments("build", "cid", "cid", "m").
					Each(func(r mmvalue.Value) bool {
						arr, _ := r.MustObject().GetOr("m", mmvalue.Null).AsArray()
						matched += len(arr)
						return true
					})
				if err != nil {
					b.Fatal(err)
				}
				if matched == 0 {
					b.Fatal("join matched nothing")
				}
			}
		})
		b.Run(sh.name+"/nestedloop-ref", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows := db.Docs.Collection("probe").Find(nil, nil, nil)
				rows = refJoinDocuments(db, rows, "build", "cid", "cid", "m")
				matched := 0
				for _, r := range rows {
					arr, _ := r.MustObject().GetOr("m", mmvalue.Null).AsArray()
					matched += len(arr)
				}
				if matched == 0 {
					b.Fatal("join matched nothing")
				}
			}
		})
	}
}

// BenchmarkVectorizedFilter measures the filter stage's batch path —
// selection-vector rewriting over shared store rows, Count terminal —
// at two selectivities.
func BenchmarkVectorizedFilter(b *testing.B) {
	db := benchJoinDB(b, 50000, 8, false)
	preds := []struct {
		name string
		keep func(int64) bool
	}{
		{"keep7of8", func(id int64) bool { return id%8 != 0 }},
		{"keep1of8", func(id int64) bool { return id%8 == 0 }},
	}
	for _, pr := range preds {
		keep := pr.keep
		b.Run(pr.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := db.Pipeline(nil).
					FromDocuments("probe", nil).
					Filter(func(r mmvalue.Value) bool {
						id, _ := r.MustObject().GetOr("cid", mmvalue.Int(0)).AsInt()
						return keep(id)
					}).
					Count()
				if err != nil || n == 0 {
					b.Fatalf("count=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkGroupBy measures the batch-native aggregation stage:
// 50k documents folded into ~a handful of groups with three
// accumulators each.
func BenchmarkGroupBy(b *testing.B) {
	db := benchJoinDB(b, 50000, 8, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Pipeline(nil).
			FromDocuments("probe", nil).
			GroupBy("cid", "k", Sum("cid", "s"), Count("c"), Max("_id", "mx")).
			Rows()
		if err != nil || len(rows) == 0 {
			b.Fatalf("groups=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkPipelineParallelScan measures the partitioned seed scan
// against the sequential one over a filtered collection scan.
func BenchmarkPipelineParallelScan(b *testing.B) {
	db := benchJoinDB(b, 20000, 8, false)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := db.Pipeline(nil).
					FromDocuments("probe", nil).
					Filter(func(r mmvalue.Value) bool {
						id, _ := r.MustObject().GetOr("cid", mmvalue.Int(0)).AsInt()
						return id%2 == 0
					})
				if par > 1 {
					p = p.Parallel(par)
				}
				if n, err := p.Count(); err != nil || n == 0 {
					b.Fatalf("count=%d err=%v", n, err)
				}
			}
		})
	}
}
