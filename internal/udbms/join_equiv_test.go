package udbms

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"udbench/internal/document"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
)

// Property test: the hash-join pipeline (all strategies — hash build,
// index fallback, PK probes) returns exactly the result sets of the
// old per-row nested-loop probes, across random datasets that include
// null keys, missing paths, cross-kind (Int/Float) key matches and
// duplicate keys.

// randKey returns a join key value drawn from a small, collision-rich
// domain mixing kinds: ints, int-valued floats (Equal to the ints),
// strings, nulls and a marker for "leave the field out".
func randKey(rng *rand.Rand) (v mmvalue.Value, omit bool) {
	switch rng.Intn(10) {
	case 0:
		return mmvalue.Null, false
	case 1:
		return mmvalue.Value{}, true // omit the field entirely
	case 2, 3:
		return mmvalue.Float(float64(rng.Intn(6))), false
	case 4:
		return mmvalue.String(fmt.Sprintf("k%d", rng.Intn(6))), false
	default:
		return mmvalue.Int(int64(rng.Intn(6))), false
	}
}

// seedJoinDB builds a probe collection, a build collection (join key
// at the nested path "ref.cid") and a build table (join key in column
// "cid") from the rng.
func seedJoinDB(t *testing.T, rng *rand.Rand, nProbe, nBuild int, docIndex, relIndex bool) *DB {
	t.Helper()
	db := Open()
	probe := db.Docs.Collection("probe")
	for i := 0; i < nProbe; i++ {
		o := mmvalue.NewObject()
		o.Set("_id", mmvalue.String(fmt.Sprintf("p%04d", i)))
		if v, omit := randKey(rng); !omit {
			o.Set("cid", v)
		}
		o.Set("n", mmvalue.Int(int64(i)))
		if err := probe.Insert(nil, mmvalue.FromObject(o)); err != nil {
			t.Fatal(err)
		}
	}
	build := db.Docs.Collection("build")
	for i := 0; i < nBuild; i++ {
		o := mmvalue.NewObject()
		o.Set("_id", mmvalue.String(fmt.Sprintf("b%04d", i)))
		if v, omit := randKey(rng); !omit {
			ref := mmvalue.NewObject()
			ref.Set("cid", v)
			o.Set("ref", mmvalue.FromObject(ref))
		}
		o.Set("payload", mmvalue.String(fmt.Sprintf("v%d", rng.Intn(100))))
		if err := build.Insert(nil, mmvalue.FromObject(o)); err != nil {
			t.Fatal(err)
		}
	}
	if docIndex {
		if err := build.CreateIndex("ref.cid"); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := db.Relational.CreateTable("buildtab", relational.MustSchema("id",
		relational.Column{Name: "id", Type: relational.TypeInt},
		relational.Column{Name: "cid", Type: relational.TypeFloat, Nullable: true},
		relational.Column{Name: "tag", Type: relational.TypeString, Nullable: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nBuild; i++ {
		o := mmvalue.NewObject()
		o.Set("id", mmvalue.Int(int64(i)))
		if v, omit := randKey(rng); !omit && v.Kind() != mmvalue.KindString {
			o.Set("cid", v)
		}
		o.Set("tag", mmvalue.String(fmt.Sprintf("t%d", rng.Intn(10))))
		if err := tbl.Insert(nil, mmvalue.FromObject(o)); err != nil {
			t.Fatal(err)
		}
	}
	if relIndex {
		if err := tbl.CreateIndex("cid"); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// refJoinDocuments is the old nested-loop semantics: one probe query
// per row through Collection.Find.
func refJoinDocuments(db *DB, rows []mmvalue.Value, collection, rowField, docPath, asField string) []mmvalue.Value {
	coll := db.Docs.Collection(collection)
	for _, r := range rows {
		obj := r.MustObject()
		key := obj.GetOr(rowField, mmvalue.Null)
		var matches []mmvalue.Value
		if !key.IsNull() {
			matches = coll.Find(nil, document.Eq(docPath, key), nil)
		}
		obj.Set(asField, mmvalue.Array(matches...))
	}
	return rows
}

// refJoinRelational mirrors the old per-row relational probe.
func refJoinRelational(db *DB, rows []mmvalue.Value, table, rowField, column, asField string) []mmvalue.Value {
	tbl, _ := db.Relational.Table(table)
	for _, r := range rows {
		obj := r.MustObject()
		key := obj.GetOr(rowField, mmvalue.Null)
		var matches []mmvalue.Value
		if !key.IsNull() {
			matches = tbl.Query(nil).Where(relational.Col(column).Eq(key)).Rows()
		}
		obj.Set(asField, mmvalue.Array(matches...))
	}
	return rows
}

// canon renders rows order-insensitively: each row becomes its string
// form (with any match array internally sorted), then rows are sorted.
func canon(t *testing.T, rows []mmvalue.Value, asField string) []string {
	t.Helper()
	out := make([]string, len(rows))
	for i, r := range rows {
		obj := r.MustObject()
		arr, ok := obj.GetOr(asField, mmvalue.Null).AsArray()
		if !ok {
			t.Fatalf("row %d missing match array %q: %s", i, asField, r)
		}
		parts := make([]string, len(arr))
		for j, m := range arr {
			parts[j] = m.String()
		}
		sort.Strings(parts)
		keys := obj.GetOr("cid", mmvalue.Null)
		out[i] = fmt.Sprintf("%s|%s|%v", obj.GetOr("_id", obj.GetOr("id", mmvalue.Null)), keys, parts)
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, label string, got, want []mmvalue.Value, asField string) {
	t.Helper()
	g, w := canon(t, got, asField), canon(t, want, asField)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d rows, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: row %d:\n got  %s\n want %s", label, i, g[i], w[i])
		}
	}
}

func TestJoinEquivalenceProperty(t *testing.T) {
	cases := []struct {
		nProbe, nBuild   int
		docIndex, relIdx bool
	}{
		{3, 60, true, true},     // small probe side: index-probe strategy
		{3, 60, false, false},   // small probe side, no index: hash build
		{200, 40, true, true},   // large probe side: hash despite index
		{200, 40, false, false}, // large probe side, no index
		{0, 20, true, false},    // empty probe side
		{20, 0, false, false},   // empty build side
	}
	for ci, tc := range cases {
		for seed := int64(0); seed < 5; seed++ {
			label := fmt.Sprintf("case%d/seed%d", ci, seed)
			db := seedJoinDB(t, rand.New(rand.NewSource(seed*31+int64(ci))), tc.nProbe, tc.nBuild, tc.docIndex, tc.relIdx)

			// Documents ⋈ documents, nested key path.
			got, err := db.Pipeline(nil).
				FromDocuments("probe", nil).
				JoinDocuments("build", "cid", "ref.cid", "m").
				Rows()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			want := refJoinDocuments(db, db.Docs.Collection("probe").Find(nil, nil, nil), "build", "cid", "ref.cid", "m")
			sameRows(t, label+"/docs", got, want, "m")

			// Documents ⋈ relational, plain column.
			got, err = db.Pipeline(nil).
				FromDocuments("probe", nil).
				JoinRelational("buildtab", "cid", "cid", "m").
				Rows()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			want = refJoinRelational(db, db.Docs.Collection("probe").Find(nil, nil, nil), "buildtab", "cid", "cid", "m")
			sameRows(t, label+"/rel", got, want, "m")

			// Documents ⋈ relational on the primary key (point probes).
			got, err = db.Pipeline(nil).
				FromDocuments("probe", nil).
				JoinRelational("buildtab", "n", "id", "m").
				Rows()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			want = refJoinRelational(db, db.Docs.Collection("probe").Find(nil, nil, nil), "buildtab", "n", "id", "m")
			sameRows(t, label+"/relpk", got, want, "m")
		}
	}
}

// TestJoinRelationalPKCrossKind pins the primary-key probe path for
// Compare-equal keys of different kinds: a Float(2.0) probe key must
// find the row whose Int primary key is 2, exactly like the scan and
// hash strategies do.
func TestJoinRelationalPKCrossKind(t *testing.T) {
	db := Open()
	tbl, err := db.Relational.CreateTable("t", relational.MustSchema("id",
		relational.Column{Name: "id", Type: relational.TypeInt},
		relational.Column{Name: "name", Type: relational.TypeString},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := tbl.Insert(nil, mmvalue.ObjectOf("id", i, "name", fmt.Sprintf("n%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	probe := db.Docs.Collection("pkprobe")
	for i, key := range []mmvalue.Value{
		mmvalue.Float(2.0), mmvalue.Int(3), mmvalue.Float(2.5),
	} {
		if err := probe.Insert(nil, mmvalue.ObjectOf("_id", fmt.Sprintf("d%d", i), "cid", key)); err != nil {
			t.Fatal(err)
		}
	}
	// 3 probe rows stay under the adaptive threshold, so this takes
	// the per-row PK probe path.
	rows, err := db.Pipeline(nil).
		FromDocuments("pkprobe", nil).
		JoinRelational("t", "cid", "id", "m").
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	wantMatches := map[string]int{"d0": 1, "d1": 1, "d2": 0}
	for _, r := range rows {
		obj := r.MustObject()
		id, _ := obj.Get("_id")
		arr, _ := obj.GetOr("m", mmvalue.Null).AsArray()
		if len(arr) != wantMatches[id.MustString()] {
			t.Errorf("row %s: %d matches, want %d", id.MustString(), len(arr), wantMatches[id.MustString()])
		}
	}
}

// TestSelfJoinNoDeadlock pins the flush-time build: joining a
// collection with itself scans it twice sequentially, never nested.
func TestSelfJoinNoDeadlock(t *testing.T) {
	db := Open()
	coll := db.Docs.Collection("c")
	for i := 0; i < 50; i++ {
		if err := coll.Insert(nil, mmvalue.ObjectOf(
			"_id", fmt.Sprintf("x%03d", i), "k", int64(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := db.Pipeline(nil).
		FromDocuments("c", nil).
		JoinDocuments("c", "k", "k", "same").
		Each(func(r mmvalue.Value) bool {
			arr, _ := r.MustObject().GetOr("same", mmvalue.Null).AsArray()
			n += len(arr)
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50*10 {
		t.Errorf("self join matched %d pairs, want 500", n)
	}
}

// TestParallelScanEquivalence checks that Parallel(n) returns the rows
// of the sequential scan in identical order, with filters and joins
// downstream.
func TestParallelScanEquivalence(t *testing.T) {
	db := seedJoinDB(t, rand.New(rand.NewSource(7)), 150, 40, false, false)
	build := func(par int) []mmvalue.Value {
		p := db.Pipeline(nil).
			FromDocuments("probe", nil).
			Filter(func(r mmvalue.Value) bool {
				n, _ := r.MustObject().GetOr("n", mmvalue.Int(0)).AsInt()
				return n%3 != 0
			}).
			JoinDocuments("build", "cid", "ref.cid", "m")
		if par > 1 {
			p = p.Parallel(par)
		}
		rows, err := p.Rows()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	seq := build(1)
	for _, par := range []int{2, 4, 13} {
		got := build(par)
		if len(got) != len(seq) {
			t.Fatalf("Parallel(%d): %d rows, want %d", par, len(got), len(seq))
		}
		for i := range got {
			if got[i].String() != seq[i].String() {
				t.Errorf("Parallel(%d): row %d differs:\n got  %s\n want %s", par, i, got[i], seq[i])
			}
		}
	}
	// Relational seeds partition too.
	relSeq, err := db.Pipeline(nil).FromRelational("buildtab", nil).Rows()
	if err != nil {
		t.Fatal(err)
	}
	relPar, err := db.Pipeline(nil).FromRelational("buildtab", nil).Parallel(4).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(relSeq) != len(relPar) {
		t.Fatalf("relational parallel: %d != %d", len(relPar), len(relSeq))
	}
	for i := range relSeq {
		if relSeq[i].String() != relPar[i].String() {
			t.Errorf("relational parallel row %d differs", i)
		}
	}
}
