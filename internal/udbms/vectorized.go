package udbms

import (
	"sort"
	"sync"

	"udbench/internal/mmvalue"
)

// This file holds the vectorized operator implementations: every stage
// consumes and produces a *Batch per call. Filters rewrite the
// selection vector in place, sorts and joins extract key columns once
// per batch, and group-by aggregates into a hash of accumulators —
// there is exactly one interface dispatch per batch, not per row.

// batchSink consumes a batch stream. push reports false to stop the
// upstream producer early (limit short-circuit); flush signals
// end-of-input so blocking stages (sort, join, group-by) can drain.
type batchSink interface {
	push(b *Batch) bool
	flush()
}

// rowSink adapts a per-row terminal callback to the batch protocol.
type rowSink struct {
	fn func(mmvalue.Value) bool
}

func (s *rowSink) push(b *Batch) bool {
	if b.sel != nil {
		for _, i := range b.sel {
			if !s.fn(b.rows[i]) {
				return false
			}
		}
		return true
	}
	for _, r := range b.rows {
		if !s.fn(r) {
			return false
		}
	}
	return true
}

func (s *rowSink) flush() {}

// ---- filter ----

type filterStage struct {
	keep func(mmvalue.Value) bool
}

func (st *filterStage) outState(in rowState) rowState { return in }
func (st *filterStage) retains() bool                 { return false }

func (st *filterStage) wire(_ rowState, _ bool, down batchSink) batchSink {
	return &filterSink{keep: st.keep, down: down, sel: make([]int32, 0, batchCap)}
}

// filterSink narrows each batch by rewriting its selection vector: no
// row is copied or re-pushed, survivors are named by index.
type filterSink struct {
	keep func(mmvalue.Value) bool
	down batchSink
	sel  []int32
}

func (s *filterSink) push(b *Batch) bool {
	sel := s.sel[:0]
	if b.sel != nil {
		for _, i := range b.sel {
			if s.keep(b.rows[i]) {
				sel = append(sel, i)
			}
		}
	} else {
		for i, r := range b.rows {
			if s.keep(r) {
				sel = append(sel, int32(i))
			}
		}
	}
	s.sel = sel
	if len(sel) == 0 {
		return true // empty batch: skip the downstream call entirely
	}
	b.sel = sel
	return s.down.push(b)
}

func (s *filterSink) flush() { s.down.flush() }

// ---- map ----

type mapStage struct {
	fn func(mmvalue.Value) mmvalue.Value
}

func (st *mapStage) outState(rowState) rowState { return rowOwned }
func (st *mapStage) retains() bool              { return false }

func (st *mapStage) wire(in rowState, _ bool, down batchSink) batchSink {
	return &mapSink{fn: st.fn, in: in, down: down,
		out: Batch{rows: make([]mmvalue.Value, 0, batchCap)}}
}

type mapSink struct {
	fn   func(mmvalue.Value) mmvalue.Value
	in   rowState
	down batchSink
	out  Batch
}

func (s *mapSink) push(b *Batch) bool {
	s.out.reset()
	n := b.Len()
	for i := 0; i < n; i++ {
		r := b.Row(i)
		if s.in != rowOwned {
			r = r.Clone()
		}
		s.out.rows = append(s.out.rows, s.fn(r))
	}
	return s.down.push(&s.out)
}

func (s *mapSink) flush() { s.down.flush() }

// ---- limit ----

type limitStage struct {
	n int
}

func (st *limitStage) outState(in rowState) rowState { return in }
func (st *limitStage) retains() bool                 { return false }

func (st *limitStage) wire(_ rowState, _ bool, down batchSink) batchSink {
	if st.n < 0 {
		return down
	}
	return &limitSink{remaining: st.n, down: down}
}

type limitSink struct {
	remaining int
	down      batchSink
}

func (s *limitSink) push(b *Batch) bool {
	if s.remaining <= 0 {
		return false
	}
	if n := b.Len(); n > s.remaining {
		b.truncate(s.remaining)
	}
	s.remaining -= b.Len()
	return s.down.push(b) && s.remaining > 0
}

func (s *limitSink) flush() { s.down.flush() }

// ---- sort ----

// sortStage is a blocking operator: it buffers the input rows together
// with a sort-key column extracted once per batch, then re-streams in
// order on flush. When every key shares one scalar kind the comparison
// loop runs over a typed int64/float64/string vector; mixed keys fall
// back to mmvalue.Compare. Rows stay shared — sorting reorders
// references only.
type sortStage struct {
	path mmvalue.Path
	desc bool
}

func (st *sortStage) outState(in rowState) rowState { return in }
func (st *sortStage) retains() bool                 { return true }

func (st *sortStage) wire(_ rowState, _ bool, down batchSink) batchSink {
	return &sortSink{st: st, down: down}
}

type sortSink struct {
	st   *sortStage
	down batchSink
	rows []mmvalue.Value
	keys colVec
}

func (s *sortSink) push(b *Batch) bool {
	n := b.Len()
	for i := 0; i < n; i++ {
		r := b.Row(i)
		s.rows = append(s.rows, r)
		s.keys.append(s.st.path.LookupOr(r, mmvalue.Null))
	}
	return true
}

func (s *sortSink) flush() {
	perm := make([]int32, len(s.rows))
	for i := range perm {
		perm[i] = int32(i)
	}
	desc := s.st.desc
	var less func(a, b int32) bool
	switch kind, _ := s.keys.homogeneous(); kind {
	case mmvalue.KindInt:
		ints := s.keys.ints(nil)
		less = func(a, b int32) bool { return ints[a] < ints[b] }
	case mmvalue.KindFloat:
		floats := s.keys.floats(nil)
		less = func(a, b int32) bool { return floats[a] < floats[b] }
	case mmvalue.KindString:
		strs := s.keys.strs(nil)
		less = func(a, b int32) bool { return strs[a] < strs[b] }
	default:
		vals := s.keys.vals
		less = func(a, b int32) bool { return mmvalue.Compare(vals[a], vals[b]) < 0 }
	}
	sort.SliceStable(perm, func(i, j int) bool {
		if desc {
			return less(perm[j], perm[i])
		}
		return less(perm[i], perm[j])
	})
	out := Batch{rows: make([]mmvalue.Value, 0, batchCap)}
	for _, i := range perm {
		out.rows = append(out.rows, s.rows[i])
		if len(out.rows) == batchCap {
			if !s.down.push(&out) {
				s.rows, s.keys.vals = nil, nil
				s.down.flush()
				return
			}
			out.reset()
		}
	}
	if len(out.rows) > 0 {
		s.down.push(&out)
	}
	s.rows, s.keys.vals = nil, nil
	s.down.flush()
}

// ---- attach machinery (joins) ----

// attachCap bounds the attacher's output batch. Every row of a pushed
// batch is alive at once, so the scratch ring must hold one object per
// batch position: a full 1024-row batch would mean ~1024 scratch
// objects allocated per query, which dwarfs small and mid-size joins
// (GC time, not dispatch, dominates them). 64 rows still amortizes the
// per-batch interface call to noise while keeping the warm-up cost of
// the ring negligible.
const attachCap = 64

// attachScratch is an attacher's pooled working memory: the output
// batch backing plus the scratch-object ring. Warming a fresh ring —
// 64 objects, each growing a keys and a vals array — costs on the
// order of 100KB of allocation, which dwarfed everything else in
// mid-size join queries; the pool amortizes it across queries. Ring
// objects keep their field storage between queries (that is the
// point); out is cleared on release so pooled slots never pin rows.
type attachScratch struct {
	objs []*mmvalue.Object
	out  []mmvalue.Value
}

var attachScratchPool = sync.Pool{New: func() any {
	return &attachScratch{out: make([]mmvalue.Value, 0, attachCap)}
}}

// attacher builds output batches for the attaching stages (hash join,
// per-row joins): it lands a match array under asField without ever
// mutating a shared store row, recycling a ring of scratch objects when
// downstream consumes rows transiently — one scratch object per batch
// position, reused across batches, zero allocations in steady state.
type attacher struct {
	down    batchSink
	asField string
	in      rowState
	useScr  bool
	scr     *attachScratch
	out     Batch
	stopped bool
}

func newAttacher(down batchSink, asField string, in rowState, transient bool) *attacher {
	scr := attachScratchPool.Get().(*attachScratch)
	return &attacher{
		down:    down,
		asField: asField,
		in:      in,
		useScr:  transient && in == rowShared,
		scr:     scr,
		out:     Batch{rows: scr.out},
	}
}

// release returns the scratch to the pool. Callers invoke it after the
// final emit: output rows are consumed synchronously by the downstream
// push, so recycling cannot alias live rows.
func (a *attacher) release() {
	if a.scr == nil {
		return
	}
	out := a.out.rows[:cap(a.out.rows)]
	clear(out)
	a.scr.out = out[:0]
	attachScratchPool.Put(a.scr)
	a.scr = nil
	a.out.rows = nil
}

func (a *attacher) attach(r mmvalue.Value, matches []mmvalue.Value) bool {
	obj := r.MustObject()
	if a.in == rowShared {
		if a.useScr {
			if len(a.scr.objs) == len(a.out.rows) {
				a.scr.objs = append(a.scr.objs, mmvalue.NewObject())
			}
			s := a.scr.objs[len(a.out.rows)]
			s.CopyFrom(obj)
			obj = s
		} else {
			obj = obj.ShallowClone()
		}
		r = mmvalue.FromObject(obj)
	}
	obj.Set(a.asField, mmvalue.Array(matches...))
	a.out.rows = append(a.out.rows, r)
	if len(a.out.rows) == attachCap {
		return a.emit()
	}
	return true
}

// emit pushes the pending output batch downstream.
func (a *attacher) emit() bool {
	if len(a.out.rows) == 0 {
		return !a.stopped
	}
	ok := a.down.push(&a.out)
	a.out.reset()
	if !ok {
		a.stopped = true
	}
	return ok
}

// ---- hash join ----

// hashTable buckets build-side records by mmvalue.Hash of their join
// key — an allocation-free hash consistent with mmvalue.Equal. Probes
// re-verify with mmvalue.Equal, so hash collisions cannot produce
// wrong matches: the join is exactly equality in the mmvalue.Compare
// sense, like the nested-loop predicates it replaces.
type hashTable struct {
	buckets map[uint64][]*hashGroup
}

type hashGroup struct {
	key  mmvalue.Value
	vals []mmvalue.Value
}

func newHashTable(sizeHint int) *hashTable {
	return &hashTable{buckets: make(map[uint64][]*hashGroup, sizeHint)}
}

func (h *hashTable) add(key, val mmvalue.Value) {
	k := key.Hash()
	for _, g := range h.buckets[k] {
		if mmvalue.Equal(g.key, key) {
			g.vals = append(g.vals, val)
			return
		}
	}
	h.buckets[k] = append(h.buckets[k], &hashGroup{key: key, vals: []mmvalue.Value{val}})
}

func (h *hashTable) get(key mmvalue.Value) []mmvalue.Value {
	for _, g := range h.buckets[key.Hash()] {
		if mmvalue.Equal(g.key, key) {
			return g.vals
		}
	}
	return nil
}

// joinSpec abstracts the build side of an equality join (document
// collection or relational table).
type joinSpec struct {
	// rowField is the flat field of the pipeline row holding the key.
	rowField string
	// asField receives the match array.
	asField string
	// buildLen approximates the build-side size (for strategy choice).
	buildLen int
	// build scans the build side once into a hash table, under the
	// pipeline's own transaction.
	build func() *hashTable
	// indexProbe fetches matches for one key through a store index;
	// nil when the build side has no usable index.
	indexProbe func(key mmvalue.Value) []mmvalue.Value
	// cacheGet/cachePut consult the DB-level join-build cache
	// (joincache.go): cacheGet is lookup-only, cachePut builds under a
	// snapshot transaction and caches. Either may be nil (no cache) or
	// return nil (gates failed); callers fall back to build.
	cacheGet func() *hashTable
	cachePut func() *hashTable
}

// hashJoinStage joins the batch stream against a build side. It is a
// blocking operator: probe rows are buffered together with their join
// keys — extracted one batch at a time — until the input ends, then
// the strategy is picked from the exact probe count: a small probe set
// against an indexed build side uses per-key index lookups, anything
// else scans the build side once into a hash table and probes the
// buffered key column in one tight loop. Deferring the build-side scan
// to flush also guarantees it never nests inside the still-open seed
// scan, so self-joins cannot deadlock on the store's scan lock.
type hashJoinStage struct {
	spec joinSpec
}

func (st *hashJoinStage) outState(rowState) rowState {
	// Matches are attached as shared store values, so the row is at
	// most shallow-owned afterwards.
	return rowShallow
}

// The adaptive strategy buffers probe rows before deciding.
func (st *hashJoinStage) retains() bool { return true }

func (st *hashJoinStage) wire(in rowState, transient bool, down batchSink) batchSink {
	threshold := 0
	if st.spec.indexProbe != nil {
		threshold = st.spec.buildLen / 8
		if threshold < 4 {
			threshold = 4
		}
		if threshold > 1024 {
			threshold = 1024
		}
	}
	return &joinSink{
		spec:      st.spec,
		threshold: threshold,
		at:        newAttacher(down, st.spec.asField, in, transient),
	}
}

type joinSink struct {
	spec      joinSpec
	threshold int
	at        *attacher
	rb        *rowBuf // pooled probe-row buffer
}

func (j *joinSink) push(b *Batch) bool {
	if j.at.stopped {
		return false
	}
	if j.rb == nil {
		j.rb = getRowBuf(4 * morselSize)
	}
	if b.sel == nil {
		j.rb.rows = append(j.rb.rows, b.rows...)
	} else {
		for _, ix := range b.sel {
			j.rb.rows = append(j.rb.rows, b.rows[ix])
		}
	}
	return true
}

// flush picks the probe strategy. A cached build table wins outright —
// probing it costs the same as index lookups without the per-probe
// store scan — so it is consulted (lookup only, never a build) before
// the size heuristics. Otherwise small probe sets against an indexed
// build side use per-key index lookups, and everything else builds the
// hash table, preferring the cacheable snapshot build when its
// visibility gates pass.
func (j *joinSink) flush() {
	if !j.at.stopped && j.rb != nil && len(j.rb.rows) > 0 {
		buf := j.rb.rows
		var ht *hashTable
		if j.spec.cacheGet != nil {
			ht = j.spec.cacheGet()
		}
		if ht == nil {
			if j.spec.cachePut != nil {
				// Even below the index-probe threshold a cacheable
				// build wins: it runs once per store change instead of
				// once per query. When the visibility gates refuse it,
				// small probe sets keep the index route.
				ht = j.spec.cachePut()
			}
			if ht == nil && (j.spec.indexProbe == nil || len(buf) >= j.threshold) {
				ht = j.spec.build()
			}
		}
		if ht != nil {
			for _, r := range buf {
				key := r.MustObject().GetOr(j.spec.rowField, mmvalue.Null)
				var matches []mmvalue.Value
				if !key.IsNull() {
					matches = ht.get(key)
				}
				if !j.at.attach(r, matches) {
					break
				}
			}
		} else {
			// Small probe set: index probes beat a full build-side scan.
			for _, r := range buf {
				key := r.MustObject().GetOr(j.spec.rowField, mmvalue.Null)
				var matches []mmvalue.Value
				if !key.IsNull() {
					matches = j.spec.indexProbe(key)
				}
				if !j.at.attach(r, matches) {
					break
				}
			}
		}
	}
	if j.rb != nil {
		putRowBuf(j.rb, j.rb.rows)
		j.rb = nil
	}
	if !j.at.stopped {
		j.at.emit()
	}
	j.at.down.flush()
	j.at.release()
}

// ---- per-row probe joins ----

// perRowStage covers the probe-only joins (KV prefix, XML, graph
// expansion): each row triggers one bounded store lookup, and the
// fetched values are attached under asField. Output rows accumulate
// into batches.
type perRowStage struct {
	// fetch returns the values to attach for the row. attached values
	// may alias store memory (ownedVals=false) or be freshly built
	// (ownedVals=true).
	fetch     func(row mmvalue.Value) []mmvalue.Value
	asField   string
	ownedVals bool
}

func (st *perRowStage) outState(in rowState) rowState {
	if !st.ownedVals {
		return rowShallow
	}
	if in == rowShared {
		return rowShallow
	}
	return in
}

func (st *perRowStage) retains() bool { return false }

func (st *perRowStage) wire(in rowState, transient bool, down batchSink) batchSink {
	return &perRowSink{fetch: st.fetch, at: newAttacher(down, st.asField, in, transient)}
}

type perRowSink struct {
	fetch func(row mmvalue.Value) []mmvalue.Value
	at    *attacher
}

func (s *perRowSink) push(b *Batch) bool {
	if s.at.stopped {
		return false
	}
	n := b.Len()
	for i := 0; i < n; i++ {
		r := b.Row(i)
		if !s.at.attach(r, s.fetch(r)) {
			return false
		}
	}
	return true
}

func (s *perRowSink) flush() {
	s.at.emit()
	s.at.down.flush()
	s.at.release()
}

// ---- group-by / aggregate ----

type aggKind uint8

const (
	aggSum aggKind = iota
	aggCount
	aggMin
	aggMax
	aggAvg
)

// Agg is one aggregate computed per group by Pipeline.GroupBy; build
// with Sum, Count, Min, Max or Avg.
type Agg struct {
	kind aggKind
	path mmvalue.Path
	as   string
}

// Sum totals the numeric values at path per group (non-numeric and
// missing values are skipped); the result is always a float field.
func Sum(path, as string) Agg { return Agg{kind: aggSum, path: mmvalue.ParsePath(path), as: as} }

// Count counts the rows of each group.
func Count(as string) Agg { return Agg{kind: aggCount, as: as} }

// Min keeps the smallest non-null value at path per group
// (mmvalue.Compare order); null when the group has none.
func Min(path, as string) Agg { return Agg{kind: aggMin, path: mmvalue.ParsePath(path), as: as} }

// Max keeps the largest non-null value at path per group; null when
// the group has none.
func Max(path, as string) Agg { return Agg{kind: aggMax, path: mmvalue.ParsePath(path), as: as} }

// Avg is Sum divided by the count of numeric values at path; null when
// the group has none.
func Avg(path, as string) Agg { return Agg{kind: aggAvg, path: mmvalue.ParsePath(path), as: as} }

// groupStage is the blocking hash aggregation behind Pipeline.GroupBy:
// rows are folded into per-group accumulators batch by batch (grouping
// by mmvalue.Hash with Equal verification, like the hash join), and on
// flush one fully-owned row per group streams out in ascending key
// order, so results are deterministic.
type groupStage struct {
	key   mmvalue.Path
	asKey string
	aggs  []Agg
}

func (st *groupStage) outState(rowState) rowState { return rowOwned }

// Everything the stage keeps (group keys, min/max winners) is cloned at
// accumulation time, so upstream scratch recycling stays safe.
func (st *groupStage) retains() bool { return false }

func (st *groupStage) wire(_ rowState, _ bool, down batchSink) batchSink {
	return &groupSink{st: st, down: down, buckets: make(map[uint64][]*groupAcc)}
}

type aggState struct {
	sum  float64
	n    int64
	best mmvalue.Value // current min/max winner
	seen bool
}

type groupAcc struct {
	key   mmvalue.Value // cloned: outlives the pushed batch
	count int64
	st    []aggState
}

type groupSink struct {
	st      *groupStage
	down    batchSink
	buckets map[uint64][]*groupAcc
	accs    []*groupAcc
}

func (g *groupSink) acc(key mmvalue.Value) *groupAcc {
	h := key.Hash()
	for _, a := range g.buckets[h] {
		if mmvalue.Equal(a.key, key) {
			return a
		}
	}
	a := &groupAcc{key: key.Clone(), st: make([]aggState, len(g.st.aggs))}
	g.buckets[h] = append(g.buckets[h], a)
	g.accs = append(g.accs, a)
	return a
}

func (g *groupSink) push(b *Batch) bool {
	n := b.Len()
	for i := 0; i < n; i++ {
		r := b.Row(i)
		acc := g.acc(g.st.key.LookupOr(r, mmvalue.Null))
		acc.count++
		for k := range g.st.aggs {
			a := &g.st.aggs[k]
			s := &acc.st[k]
			switch a.kind {
			case aggCount:
				// count is per-group, tracked once above.
			case aggSum, aggAvg:
				if f, ok := a.path.LookupOr(r, mmvalue.Null).AsFloat(); ok {
					s.sum += f
					s.n++
				}
			case aggMin:
				if v := a.path.LookupOr(r, mmvalue.Null); !v.IsNull() {
					if !s.seen || mmvalue.Compare(v, s.best) < 0 {
						s.best, s.seen = v.Clone(), true
					}
				}
			case aggMax:
				if v := a.path.LookupOr(r, mmvalue.Null); !v.IsNull() {
					if !s.seen || mmvalue.Compare(v, s.best) > 0 {
						s.best, s.seen = v.Clone(), true
					}
				}
			}
		}
	}
	return true
}

func (g *groupSink) flush() {
	accs := g.accs
	sort.SliceStable(accs, func(i, j int) bool {
		return mmvalue.Compare(accs[i].key, accs[j].key) < 0
	})
	out := Batch{rows: make([]mmvalue.Value, 0, batchCap)}
	for _, acc := range accs {
		obj := mmvalue.NewObject()
		obj.Set(g.st.asKey, acc.key)
		for k := range g.st.aggs {
			a := &g.st.aggs[k]
			s := acc.st[k]
			switch a.kind {
			case aggCount:
				obj.Set(a.as, mmvalue.Int(acc.count))
			case aggSum:
				obj.Set(a.as, mmvalue.Float(s.sum))
			case aggAvg:
				if s.n > 0 {
					obj.Set(a.as, mmvalue.Float(s.sum/float64(s.n)))
				} else {
					obj.Set(a.as, mmvalue.Null)
				}
			case aggMin, aggMax:
				if s.seen {
					obj.Set(a.as, s.best)
				} else {
					obj.Set(a.as, mmvalue.Null)
				}
			}
		}
		out.rows = append(out.rows, mmvalue.FromObject(obj))
		if len(out.rows) == batchCap {
			if !g.down.push(&out) {
				g.drop()
				g.down.flush()
				return
			}
			out.reset()
		}
	}
	if len(out.rows) > 0 {
		g.down.push(&out)
	}
	g.drop()
	g.down.flush()
}

func (g *groupSink) drop() {
	g.buckets, g.accs = nil, nil
}
