package udbms

import (
	"errors"
	"fmt"
	"testing"

	"udbench/internal/graph"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/txn"
	"udbench/internal/xmlstore"
)

// seedSmall loads a miniature Figure-1 dataset: 3 customers
// (relational + graph vertices), orders (documents), feedback (kv),
// invoices (xml), knows edges (graph).
func seedSmall(t testing.TB) *DB {
	t.Helper()
	db := Open()
	cust, err := db.Relational.CreateTable("customer", relational.MustSchema("id",
		relational.Column{Name: "id", Type: relational.TypeInt},
		relational.Column{Name: "name", Type: relational.TypeString},
		relational.Column{Name: "city", Type: relational.TypeString},
	))
	if err != nil {
		t.Fatal(err)
	}
	orders := db.Docs.Collection("orders")
	for i := 1; i <= 3; i++ {
		if err := cust.Insert(nil, mmvalue.ObjectOf("id", i, "name", fmt.Sprintf("cust%d", i), "city", "hki")); err != nil {
			t.Fatal(err)
		}
		if err := db.Graph.AddVertex(nil, graph.VID(fmt.Sprintf("c%d", i)), "customer", mmvalue.ObjectOf("id", i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Graph.AddEdge(nil, "k12", "knows", "c1", "c2", mmvalue.Null)
	db.Graph.AddEdge(nil, "k23", "knows", "c2", "c3", mmvalue.Null)
	for i := 1; i <= 4; i++ {
		cid := (i % 3) + 1
		if err := orders.Insert(nil, mmvalue.ObjectOf(
			"_id", fmt.Sprintf("o%d", i), "customer_id", cid, "total", float64(i*10))); err != nil {
			t.Fatal(err)
		}
		db.KV.Put(nil, fmt.Sprintf("feedback/%d/o%d", cid, i), mmvalue.ObjectOf("rating", i))
		db.XML.Put(nil, fmt.Sprintf("o%d", i), xmlstore.MustParse(
			fmt.Sprintf(`<invoice id="o%d"><total>%d</total></invoice>`, i, i*10)))
	}
	return db
}

func TestOpenAndStats(t *testing.T) {
	db := seedSmall(t)
	st := db.Stats()
	if st.Tables["customer"] != 3 {
		t.Errorf("customers = %d", st.Tables["customer"])
	}
	if st.Collections["orders"] != 4 {
		t.Errorf("orders = %d", st.Collections["orders"])
	}
	if st.Vertices != 3 || st.Edges != 2 {
		t.Errorf("graph = %d/%d", st.Vertices, st.Edges)
	}
	if st.KVPairs != 4 || st.XMLDocs != 4 {
		t.Errorf("kv/xml = %d/%d", st.KVPairs, st.XMLDocs)
	}
}

func TestCrossModelTransactionAtomicity(t *testing.T) {
	db := seedSmall(t)
	// The paper's example: an order update touches JSON Orders,
	// key-value Feedback and XML Invoice atomically.
	err := db.RunTx(func(tx *txn.Tx) error {
		if err := db.Docs.Collection("orders").SetPath(tx, "o1", "total", mmvalue.Float(999)); err != nil {
			return err
		}
		if err := db.KV.Put(tx, "feedback/2/o1", mmvalue.ObjectOf("rating", 5)); err != nil {
			return err
		}
		return db.XML.Update(tx, "o1", func(n *xmlstore.Node) (*xmlstore.Node, error) {
			total, _ := n.FirstChild("total")
			total.Children = []*xmlstore.Node{xmlstore.NewText("999")}
			return n, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := db.Docs.Collection("orders").Get(nil, "o1")
	if v, _ := mmvalue.ParsePath("total").Lookup(doc); !mmvalue.Equal(v, mmvalue.Float(999)) {
		t.Error("doc side lost")
	}
	inv, _ := db.XML.Get(nil, "o1")
	tot, _ := inv.FirstChild("total")
	if tot.InnerText() != "999" {
		t.Error("xml side lost")
	}

	// Failure in the last leg rolls back all three models.
	boom := errors.New("boom")
	err = db.RunTx(func(tx *txn.Tx) error {
		db.Docs.Collection("orders").SetPath(tx, "o1", "total", mmvalue.Float(-1))
		db.KV.Put(tx, "feedback/2/o1", mmvalue.ObjectOf("rating", 0))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	doc, _ = db.Docs.Collection("orders").Get(nil, "o1")
	if v, _ := mmvalue.ParsePath("total").Lookup(doc); !mmvalue.Equal(v, mmvalue.Float(999)) {
		t.Error("aborted doc write leaked")
	}
	fb, _ := db.KV.Get(nil, "feedback/2/o1")
	if v, _ := fb.MustObject().Get("rating"); !mmvalue.Equal(v, mmvalue.Int(5)) {
		t.Error("aborted kv write leaked")
	}
}

func TestCrossModelSnapshot(t *testing.T) {
	db := seedSmall(t)
	reader := db.Begin()
	// Concurrent writer changes all models.
	db.RunTx(func(tx *txn.Tx) error {
		db.Docs.Collection("orders").SetPath(tx, "o1", "total", mmvalue.Float(777))
		db.KV.Put(tx, "feedback/2/o1", mmvalue.ObjectOf("rating", 1))
		db.Graph.AddVertex(tx, "c9", "customer", mmvalue.Null)
		return nil
	})
	// Reader sees the pre-write world across every model.
	doc, _ := db.Docs.Collection("orders").Get(reader, "o1")
	if v, _ := mmvalue.ParsePath("total").Lookup(doc); !mmvalue.Equal(v, mmvalue.Float(10)) {
		t.Errorf("doc snapshot = %s", v)
	}
	if _, ok := db.Graph.GetVertex(reader, "c9"); ok {
		t.Error("graph snapshot sees future vertex")
	}
	fb, _ := db.KV.Get(reader, "feedback/2/o1")
	if v, _ := fb.MustObject().Get("rating"); !mmvalue.Equal(v, mmvalue.Int(1)) && v.MustInt() == 1 {
		t.Error("kv snapshot sees future write")
	}
	reader.Abort()
}

func TestPipelineRelationalToDocsToKV(t *testing.T) {
	db := seedSmall(t)
	rows, err := db.Pipeline(nil).
		FromRelational("customer", relational.Col("city").Eq("hki")).
		JoinDocuments("orders", "id", "customer_id", "orders").
		JoinKVPrefix(func(r mmvalue.Value) string {
			id, _ := r.MustObject().Get("id")
			return fmt.Sprintf("feedback/%d/", id.MustInt())
		}, "feedback").
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("pipeline rows = %d", len(rows))
	}
	totalOrders := 0
	totalFeedback := 0
	for _, r := range rows {
		o := r.MustObject()
		ordersArr, _ := o.GetOr("orders", mmvalue.Null).AsArray()
		fbArr, _ := o.GetOr("feedback", mmvalue.Null).AsArray()
		totalOrders += len(ordersArr)
		totalFeedback += len(fbArr)
	}
	if totalOrders != 4 || totalFeedback != 4 {
		t.Errorf("joined %d orders, %d feedback; want 4, 4", totalOrders, totalFeedback)
	}
}

func TestPipelineGraphExpansionAndXML(t *testing.T) {
	db := seedSmall(t)
	rows, err := db.Pipeline(nil).
		FromGraphVertices("customer", nil).
		ExpandGraph(func(r mmvalue.Value) string {
			v, _ := r.MustObject().Get("_vid")
			return v.MustString()
		}, 2, graph.Out, "knows", "reach").
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byVid := map[string]int{}
	for _, r := range rows {
		o := r.MustObject()
		vid, _ := o.Get("_vid")
		reach, _ := o.GetOr("reach", mmvalue.Null).AsArray()
		byVid[vid.MustString()] = len(reach)
	}
	if byVid["c1"] != 2 || byVid["c2"] != 1 || byVid["c3"] != 0 {
		t.Errorf("reach = %v", byVid)
	}
	// XML join: per-order invoice totals.
	rows, err = db.Pipeline(nil).
		FromDocuments("orders", nil).
		JoinXML(func(r mmvalue.Value) string {
			id, _ := r.MustObject().Get("_id")
			return id.MustString()
		}, "/invoice/total", "invoice_total").
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		o := r.MustObject()
		arr, _ := o.GetOr("invoice_total", mmvalue.Null).AsArray()
		if len(arr) != 1 {
			t.Errorf("invoice_total join missing: %s", r)
		}
	}
}

func TestPipelineFilterMapLimitCountErr(t *testing.T) {
	db := seedSmall(t)
	p := db.Pipeline(nil).
		FromDocuments("orders", nil).
		Filter(func(r mmvalue.Value) bool {
			v, _ := mmvalue.ParsePath("total").Lookup(r)
			f, _ := v.AsFloat()
			return f >= 20
		}).
		Map(func(r mmvalue.Value) mmvalue.Value {
			o := r.MustObject()
			o.Set("flag", mmvalue.Bool(true))
			return r
		}).
		Limit(2)
	n, err := p.Count()
	if err != nil || n != 2 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	rows, _ := p.Rows()
	if v, _ := rows[0].MustObject().Get("flag"); !mmvalue.Equal(v, mmvalue.Bool(true)) {
		t.Error("Map lost")
	}
	// Unknown table surfaces via Err.
	p = db.Pipeline(nil).FromRelational("nope", nil)
	if p.Err() == nil {
		t.Error("unknown table should error")
	}
	// Error short-circuits later stages.
	if _, err := p.JoinDocuments("orders", "id", "customer_id", "x").Rows(); err == nil {
		t.Error("error should propagate")
	}
	if _, err := db.Pipeline(nil).FromRelational("customer", nil).JoinRelational("nope", "id", "id", "x").Rows(); err == nil {
		t.Error("join against unknown table should error")
	}
	if _, err := db.Pipeline(nil).FromDocuments("orders", nil).JoinXML(func(mmvalue.Value) string { return "x" }, "bad xpath", "y").Rows(); err == nil {
		t.Error("bad xpath should error")
	}
}

func TestPipelineJoinRelational(t *testing.T) {
	db := seedSmall(t)
	rows, err := db.Pipeline(nil).
		FromDocuments("orders", nil).
		JoinRelational("customer", "customer_id", "id", "cust").
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		arr, _ := r.MustObject().GetOr("cust", mmvalue.Null).AsArray()
		if len(arr) != 1 {
			t.Errorf("order row should join exactly 1 customer, got %d", len(arr))
		}
	}
}

func TestCrossModelDeadlockResolved(t *testing.T) {
	db := seedSmall(t)
	// Two transactions locking kv and doc resources in opposite order;
	// RunTx retries the victim, so both eventually succeed.
	done := make(chan error, 2)
	go func() {
		done <- db.RunTx(func(tx *txn.Tx) error {
			if err := db.KV.Put(tx, "lockA", mmvalue.Int(1)); err != nil {
				return err
			}
			return db.Docs.Collection("orders").SetPath(tx, "o1", "x", mmvalue.Int(1))
		})
	}()
	go func() {
		done <- db.RunTx(func(tx *txn.Tx) error {
			if err := db.Docs.Collection("orders").SetPath(tx, "o1", "y", mmvalue.Int(2)); err != nil {
				return err
			}
			return db.KV.Put(tx, "lockA", mmvalue.Int(2))
		})
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("txn %d: %v", i, err)
		}
	}
}
