package udbms

import (
	"sync"

	"udbench/internal/txn"
)

// joinCache memoizes build-side hash tables across pipeline runs.
//
// Analytic queries re-scan the same build side (a customer table, an
// orders collection) on every execution and rebuild an identical hash
// table each time — for read-heavy workloads the build dominates the
// join's allocation profile. The cache keeps one table per
// (store, join path) pair and reuses it for as long as it provably
// matches what the requesting reader would see:
//
//   - Entries are built under a throwaway snapshot transaction pinned
//     at the published commit watermark, so an entry is exactly the
//     store's committed state at entry.snap.
//   - Stores bump a version counter inside the commit hook, before the
//     corresponding row versions are stamped visible (see
//     Table.Version / Collection.Version). An entry records the
//     counter at build time; any later committed write bumps it first,
//     so "counter unchanged" certifies the visible data is unchanged.
//   - Builds are refused while commits are in flight
//     (Oracle().Current() != Published()): a commit that had already
//     bumped the counter but not yet published could otherwise slip
//     its effects past the version check.
//   - A transactional reader gets the entry only when its snapshot is
//     at or above entry.snap and it has written nothing itself
//     (Tx.ReadOnly): with the version unchanged there are no commits
//     between the two snapshots, so both see identical build-side
//     state. Non-transactional readers (latest-committed streams) are
//     served whenever the version matches.
//
// Anything that fails the gates simply falls back to the per-query
// build — the cache is a fast path, never a requirement.
type joinCache struct {
	m sync.Map // joinCacheKey -> *joinCacheEntry
}

// joinCacheKey identifies a build side by store identity (pointer) and
// the path/column the build keys on.
type joinCacheKey struct {
	store any
	field string
}

type joinCacheEntry struct {
	ver  uint64
	snap txn.TS
	ht   *hashTable
}

// get returns the cached hash table if it is provably equivalent to
// what a fresh build under tx would produce, else nil. Lookup only —
// it never builds.
func (c *joinCache) get(key joinCacheKey, ver uint64, tx *txn.Tx) *hashTable {
	e, ok := c.m.Load(key)
	if !ok {
		return nil
	}
	ent := e.(*joinCacheEntry)
	if ent.ver != ver {
		return nil
	}
	if tx != nil && (tx.BeginTS() < ent.snap || !tx.ReadOnly()) {
		return nil
	}
	return ent.ht
}

// put builds the hash table under a snapshot transaction at the
// published watermark, caches it, and returns it when the result is
// also valid for the requesting tx. It returns nil when the build
// cannot be certified (in-flight commits, writer transactions, stale
// reader snapshots); the caller falls back to its per-query build.
func (c *joinCache) put(key joinCacheKey, mgr *txn.Manager, version func() uint64, tx *txn.Tx, scan func(*txn.Tx) *hashTable) *hashTable {
	if tx != nil && !tx.ReadOnly() {
		return nil
	}
	if mgr.Oracle().Current() != mgr.Published() {
		return nil // commits mid-publish: version checks are not airtight
	}
	ver := version()
	btx := mgr.Begin()
	snap := btx.BeginTS()
	ht := scan(btx)
	btx.Abort()
	if version() != ver {
		// A writer committed during the build. The table is still a
		// consistent snapshot at snap, but certifying it for future
		// readers (or even this one) is no longer possible.
		return nil
	}
	c.m.Store(key, &joinCacheEntry{ver: ver, snap: snap, ht: ht})
	if tx != nil && tx.BeginTS() != snap {
		return nil // reader began under an older watermark than the entry
	}
	return ht
}
