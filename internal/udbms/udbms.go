package udbms

import (
	"udbench/internal/document"
	"udbench/internal/graph"
	"udbench/internal/kv"
	"udbench/internal/relational"
	"udbench/internal/txn"
	"udbench/internal/xmlstore"
)

// DB is a unified multi-model database instance.
type DB struct {
	mgr *txn.Manager

	// Relational is the relational model (tables).
	Relational *relational.DB
	// Docs is the JSON document model (collections).
	Docs *document.Store
	// Graph is the property-graph model.
	Graph *graph.Store
	// KV is the key-value model.
	KV *kv.Store
	// XML is the XML document model.
	XML *xmlstore.Store

	// joins caches build-side hash tables for the pipeline executor's
	// equality joins, keyed by store version (see joincache.go).
	joins joinCache
}

// Open creates an empty unified database. All five models share one
// transaction manager.
func Open() *DB {
	mgr := txn.NewManager()
	return &DB{
		mgr:        mgr,
		Relational: relational.NewDB(mgr),
		Docs:       document.NewStore("doc", mgr),
		Graph:      graph.NewStore("graph", mgr),
		KV:         kv.NewStore("kv", mgr),
		XML:        xmlstore.NewStore("xml", mgr),
	}
}

// Manager exposes the shared transaction manager.
func (db *DB) Manager() *txn.Manager { return db.mgr }

// Begin starts a cross-model transaction.
func (db *DB) Begin() *txn.Tx { return db.mgr.Begin() }

// RunTx executes fn in a cross-model transaction, committing on nil
// and aborting on error, retrying deadlock victims up to three times.
func (db *DB) RunTx(fn func(tx *txn.Tx) error) error {
	return db.mgr.RunWith(3, fn)
}

// Stats summarizes the live dataset (used by experiment F1).
type Stats struct {
	Tables      map[string]int // rows per relational table
	Collections map[string]int // docs per collection
	Vertices    int
	Edges       int
	KVPairs     int
	XMLDocs     int
}

// Compact garbage-collects old record versions across every model.
// When zero, the horizon defaults to the published commit watermark
// plus one — the tight correct bound under epoch commit: a version at
// or below the watermark is fully stamped and visible, so the versions
// it shadows can never be read by a new snapshot. Oracle().Current()
// would run ahead of the watermark while commits are mid-stamp and
// could GC versions still needed by a snapshot begun at the watermark.
// Compact must not run concurrently with transactions that read below
// the horizon; in the benchmark it runs between workload phases.
//
// Compact also sweeps idle lock-table entries: names merely probed
// (a GetShared miss on a key that never existed) leave resident lock
// entries with no version chain, and this is the watermark-keyed GC
// point that reclaims them. The sweep itself is safe against running
// transactions (busy entries are skipped); see txn.SweepLockEntries.
func (db *DB) Compact(horizon txn.TS) int {
	if horizon == 0 {
		horizon = db.mgr.Published() + 1
	}
	dropped := 0
	for _, name := range db.Relational.TableNames() {
		t, _ := db.Relational.Table(name)
		dropped += t.Compact(horizon)
	}
	for _, name := range db.Docs.CollectionNames() {
		dropped += db.Docs.Collection(name).Compact(horizon)
	}
	dropped += db.KV.Compact(horizon)
	dropped += db.XML.Compact(horizon)
	db.mgr.SweepLockEntries()
	return dropped
}

// Stats counts live records in every model at latest-committed state.
func (db *DB) Stats() Stats {
	st := Stats{
		Tables:      make(map[string]int),
		Collections: make(map[string]int),
	}
	for _, name := range db.Relational.TableNames() {
		t, _ := db.Relational.Table(name)
		st.Tables[name] = t.Count()
	}
	for _, name := range db.Docs.CollectionNames() {
		st.Collections[name] = db.Docs.Collection(name).Count()
	}
	st.Vertices = db.Graph.VertexCount(nil)
	st.Edges = db.Graph.EdgeCount(nil)
	st.KVPairs = db.KV.Len()
	st.XMLDocs = db.XML.Count()
	return st
}
