package durable

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"udbench/internal/consistency"
	"udbench/internal/wal"
)

// crashTrial is one randomized kill point: run a stream of cross-model
// transactions against a durable database on a fault-injecting
// filesystem, kill the "process" at a random byte offset or mid-fsync,
// lose the unsynced page cache, recover, and check the two durability
// invariants:
//
//   - zero lost committed: every acknowledged commit is fully visible
//     after recovery (checked per model with a consistency.Checker);
//   - zero resurrected aborted: no transaction whose commit was refused
//     by the sealed log reappears.
//
// The first transaction to observe ErrSealed is ambiguous: the seal may
// have fired in its post-publish durability wait, which means it was
// applied in memory but never acknowledged — recovery may keep or drop
// it (its record may sit in the torn tail). Every later ErrSealed is a
// provable Append refusal (the seal is permanent and checked before any
// version is stamped), so those transactions must be absent. Both kinds
// still register with the atomicity checker: whatever recovery decides,
// it must be all-or-nothing per transaction.
func crashTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	policies := []wal.SyncPolicy{wal.SyncGroup, wal.SyncGroup, wal.SyncAlways, wal.SyncAsync}
	policy := policies[rng.Intn(len(policies))]
	relaxedAcks := policy == wal.SyncAsync // acks precede fsync: loss allowed

	mem := wal.NewMemFS()
	ffs := wal.NewFailFS(mem)
	opts := Options{FS: ffs, Policy: policy, AsyncInterval: 200 * time.Microsecond}
	d, err := Open("crash", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Relational.CreateTable("items", itemsSchema()); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	// Arm one of the two kill modes at a random position. The byte
	// range spans roughly the whole run, so every prefix is a reachable
	// kill point; overshooting just means a clean (no-crash) trial.
	const txns = 40
	midFsync := rng.Intn(2) == 1
	if midFsync {
		ffs.CrashAtSync(2 + rng.Intn(txns))
	} else {
		ffs.CrashAtByte(int64(rng.Intn(16 * 1024)))
	}

	checker := consistency.NewChecker()
	atom := consistency.NewAtomicityChecker()
	acked := make(map[int]bool)   // tx index -> commit acknowledged
	refused := make(map[int]bool) // tx index -> aborted by the sealed log
	sealedSeen := false
	snapAt := -1
	if rng.Intn(2) == 0 {
		snapAt = 5 + rng.Intn(txns/2)
	}
	for i := 0; i < txns; i++ {
		if i == snapAt {
			// A checkpoint racing the kill point exercises
			// snapshot+tail recovery; under injection it may fail,
			// leaving the previous snapshot (or none) in place.
			if _, err := d.Checkpoint(); err != nil {
				t.Logf("seed %d: checkpoint: %v", seed, err)
			}
		}
		err := seedAll(d, i)
		writes := make(map[string]uint64, len(models))
		for _, m := range models {
			writes[m+"/"+fmt.Sprint(i)] = uint64(i) + 1
		}
		switch {
		case err == nil:
			acked[i] = true
			for key, seq := range writes {
				checker.RecordWrite(0, key, seq)
			}
			atom.RegisterTxn(fmt.Sprint(i), writes)
		case errors.Is(err, wal.ErrSealed):
			if sealedSeen {
				refused[i] = true
			}
			sealedSeen = true
			atom.RegisterTxn(fmt.Sprint(i), writes)
		default:
			t.Fatalf("seed %d: tx %d: unexpected error: %v", seed, i, err)
		}
		if ffs.Crashed() && len(refused) > 2 {
			break // process is dead; a few refusals prove sealing
		}
	}
	// Kill: stop the process, lose the unsynced page cache.
	d.Close()
	mem.Crash(rng)

	// Recover on the surviving bytes (no fault injection: the new
	// process's disk works).
	r, err := Open("crash", Options{FS: mem, Policy: policy})
	if err != nil {
		t.Fatalf("seed %d: recovery failed: %v", seed, err)
	}
	defer r.Close()

	now := time.Now()
	observed := make(map[string]uint64)
	for i := 0; i < txns; i++ {
		for _, m := range models {
			got := readSeq(r, m, i)
			key := m + "/" + fmt.Sprint(i)
			if got >= 0 {
				observed[key] = uint64(got) + 1
			}
			if refused[i] && got >= 0 {
				t.Errorf("seed %d: resurrected aborted tx %d in %s", seed, i, m)
			}
			if acked[i] && !relaxedAcks {
				var seq uint64
				if got >= 0 {
					seq = uint64(got) + 1
				}
				checker.RecordRead(0, key, seq, now, uint64(i)+1, now)
			}
		}
	}
	if !relaxedAcks {
		rep := checker.Report()
		if rep.RYWViolations != 0 || rep.MissingReads != 0 {
			t.Errorf("seed %d (policy %v, midFsync %v): lost committed writes: %+v",
				seed, policy, midFsync, rep)
		}
	}
	if torn := atom.ObserveSnapshot(observed); len(torn) > 0 {
		t.Errorf("seed %d: torn transactions after recovery: %v", seed, torn)
	}
}

// TestCrashMatrix runs ≥50 randomized kill points covering both kill
// modes (byte offset and mid-fsync), all three fsync policies, and
// snapshot-present and log-only recoveries.
func TestCrashMatrix(t *testing.T) {
	const trials = 56
	for s := 0; s < trials; s++ {
		s := s
		t.Run(fmt.Sprintf("seed%02d", s), func(t *testing.T) {
			crashTrial(t, int64(s))
		})
	}
}

// TestCrashTornFinalRecord pins the specific torn-tail case: the file
// ends mid-record, recovery truncates exactly the torn suffix and keeps
// every whole record.
func TestCrashTornFinalRecord(t *testing.T) {
	mem := wal.NewMemFS()
	d, err := Open("crash", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Relational.CreateTable("items", itemsSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := seedAll(d, i); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	// Tear the final record by hand: chop a few bytes off the log.
	data, err := mem.ReadFile("crash/" + LogName)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Truncate("crash/"+LogName, int64(len(data)-3)); err != nil {
		t.Fatal(err)
	}
	r, err := Open("crash", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Recovery.Truncated {
		t.Fatal("torn tail not detected")
	}
	// Transactions 0..6 must be intact; 7 was torn and dropped.
	for i := 0; i < 7; i++ {
		for _, m := range models {
			if got := readSeq(r, m, i); got != int64(i) {
				t.Errorf("%s[%d] = %d, want %d", m, i, got, i)
			}
		}
	}
	for _, m := range models {
		if got := readSeq(r, m, 7); got != -1 {
			t.Errorf("torn record resurrected: %s[7] = %d", m, got)
		}
	}
	// The truncated log accepts new appends cleanly.
	if err := seedAll(r, 8); err != nil {
		t.Fatal(err)
	}
}
