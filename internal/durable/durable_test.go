package durable

import (
	"errors"
	"fmt"
	"testing"

	"udbench/internal/federation"
	"udbench/internal/graph"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/txn"
	"udbench/internal/wal"
	"udbench/internal/xmlstore"
)

func itemsSchema() relational.Schema {
	return relational.MustSchema("id",
		relational.Column{Name: "id", Type: relational.TypeInt},
		relational.Column{Name: "seq", Type: relational.TypeInt},
	)
}

// seedAll writes one record with sequence number i into every model
// inside a single cross-model transaction.
func seedAll(d *DB, i int) error {
	return d.RunTx(func(tx *txn.Tx) error {
		if err := d.KV.Put(tx, fmt.Sprintf("k%04d", i), mmvalue.Int(int64(i))); err != nil {
			return err
		}
		if err := d.Docs.Collection("orders").Insert(tx,
			mmvalue.ObjectOf("_id", fmt.Sprintf("d%04d", i), "seq", i)); err != nil {
			return err
		}
		items, _ := d.Relational.Table("items")
		if err := items.Insert(tx, mmvalue.ObjectOf("id", i, "seq", i)); err != nil {
			return err
		}
		if err := d.Graph.AddVertex(tx, vid(i), "node", mmvalue.ObjectOf("seq", i)); err != nil {
			return err
		}
		doc := xmlstore.NewElement("rec")
		doc.SetAttr("seq", fmt.Sprint(i))
		return d.XML.Put(tx, fmt.Sprintf("x%04d", i), doc)
	})
}

func vid(i int) graph.VID { return graph.VID(fmt.Sprintf("v%04d", i)) }

// readSeq returns the sequence number recovered for record i in the
// named model, or -1 when the record is missing.
func readSeq(d *DB, model string, i int) int64 {
	switch model {
	case "kv":
		if v, ok := d.KV.Get(nil, fmt.Sprintf("k%04d", i)); ok {
			n, _ := v.AsInt()
			return n
		}
	case "doc":
		if v, ok := d.Docs.Collection("orders").Get(nil, fmt.Sprintf("d%04d", i)); ok {
			n, _ := v.MustObject().GetOr("seq", mmvalue.Null).AsInt()
			return n
		}
	case "rel":
		items, ok := d.Relational.Table("items")
		if !ok {
			return -1
		}
		if row, ok := items.Get(nil, i); ok {
			n, _ := row.MustObject().GetOr("seq", mmvalue.Null).AsInt()
			return n
		}
	case "graph":
		if v, ok := d.Graph.GetVertex(nil, vid(i)); ok {
			n, _ := v.Props.MustObject().GetOr("seq", mmvalue.Null).AsInt()
			return n
		}
	case "xml":
		if doc, ok := d.XML.Get(nil, fmt.Sprintf("x%04d", i)); ok {
			var n int64
			if s, ok := doc.Attr("seq"); ok {
				fmt.Sscan(s, &n)
				return n
			}
		}
	}
	return -1
}

var models = []string{"kv", "doc", "rel", "graph", "xml"}

func TestDurableRoundTrip(t *testing.T) {
	fsys := wal.NewMemFS()
	d, err := Open("db", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Relational.CreateTable("items", itemsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := d.Docs.Collection("orders").CreateIndex("seq"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := seedAll(d, i); err != nil {
			t.Fatal(err)
		}
	}
	// Mutations beyond inserts: update, delete, graph edge, props.
	if err := d.RunTx(func(tx *txn.Tx) error {
		if err := d.KV.Delete(tx, "k0003"); err != nil {
			return err
		}
		if err := d.Docs.Collection("orders").SetPath(tx, "d0004", "seq", mmvalue.Int(444)); err != nil {
			return err
		}
		items, _ := d.Relational.Table("items")
		if err := items.Delete(tx, 5); err != nil {
			return err
		}
		if err := d.Graph.AddEdge(tx, "e0", "link", vid(1), vid(2), mmvalue.ObjectOf("w", 1.5)); err != nil {
			return err
		}
		return d.XML.Delete(tx, "x0006")
	}); err != nil {
		t.Fatal(err)
	}
	wm := d.Manager().Published()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open("db", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Recovery.Records == 0 || d2.Recovery.WatermarkTS != uint64(wm) {
		t.Fatalf("recovery = %+v, want watermark %d", d2.Recovery, wm)
	}
	for i := 0; i < 20; i++ {
		for _, m := range models {
			want := int64(i)
			switch {
			case m == "kv" && i == 3, m == "rel" && i == 5, m == "xml" && i == 6:
				want = -1
			case m == "doc" && i == 4:
				want = 444
			}
			if got := readSeq(d2, m, i); got != want {
				t.Errorf("%s[%d] = %d, want %d", m, i, got, want)
			}
		}
	}
	if _, ok := d2.Graph.GetEdge(nil, "e0"); !ok {
		t.Error("edge e0 lost")
	}
	if !d2.Docs.Collection("orders").HasIndex("seq") {
		t.Error("doc index lost")
	}
	// New commits stamp after the recovered watermark and are durable.
	if err := seedAll(d2, 99); err != nil {
		t.Fatal(err)
	}
	if got := d2.Manager().Published(); got <= wm {
		t.Fatalf("post-recovery watermark %d <= pre-crash %d", got, wm)
	}
}

func TestSnapshotPlusTailRecovery(t *testing.T) {
	fsys := wal.NewMemFS()
	d, err := Open("db", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Relational.CreateTable("items", itemsSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := seedAll(d, i); err != nil {
			t.Fatal(err)
		}
	}
	snapTS, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := seedAll(d, i); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate a kill. Group policy means acked == synced.
	d2, err := Open("db", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Recovery.SnapshotTS != snapTS {
		t.Fatalf("snapshot ts %d, want %d", d2.Recovery.SnapshotTS, snapTS)
	}
	if d2.Recovery.SnapshotOps == 0 {
		t.Fatal("no snapshot ops applied")
	}
	// Only the 5 tail transactions replay from the log.
	if d2.Recovery.Records != 5 {
		t.Fatalf("replayed %d records, want 5 (tail only)", d2.Recovery.Records)
	}
	for i := 0; i < 15; i++ {
		for _, m := range models {
			if got := readSeq(d2, m, i); got != int64(i) {
				t.Errorf("%s[%d] = %d, want %d", m, i, got, i)
			}
		}
	}
}

// TestReplayIdempotent pins the recovery idempotence satellite:
// replaying the same log twice must converge to a byte-identical state
// encoding as replaying it once.
func TestReplayIdempotent(t *testing.T) {
	fsys := wal.NewMemFS()
	d, err := Open("db", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Relational.CreateTable("items", itemsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := d.Docs.Collection("orders").CreateIndex("seq"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := seedAll(d, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.RunTx(func(tx *txn.Tx) error {
		if err := d.KV.Delete(tx, "k0002"); err != nil {
			return err
		}
		if err := d.Graph.AddEdge(tx, "e1", "link", vid(0), vid(1), mmvalue.Null); err != nil {
			return err
		}
		return d.Graph.RemoveVertex(tx, vid(7))
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	encode := func(d *DB) []byte {
		tgt := target{rel: d.Relational, docs: d.Docs, graph: d.Graph,
			kv: d.KV, xml: d.XML, mgr: d.Manager()}
		tx := d.Manager().Begin()
		defer tx.Abort()
		return wal.AppendCommit(nil, 0, encodeState(tgt, tx))
	}

	once, err := Open("db", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer once.Close()
	onceBytes := encode(once)

	// Replay the same log a second time over the already-recovered
	// state: every op must upsert/tombstone to the same place.
	tgt := target{rel: once.Relational, docs: once.Docs, graph: once.Graph,
		kv: once.KV, xml: once.XML, mgr: once.Manager()}
	once.Manager().SetCommitLog(nil) // do not re-log the re-applied ops
	if _, err := wal.Replay(fsys, "db/"+LogName, func(ts uint64, ops [][]byte) error {
		return applyOps(tgt, ops)
	}); err != nil {
		t.Fatal(err)
	}
	twiceBytes := encode(once)
	if string(onceBytes) != string(twiceBytes) {
		t.Fatalf("replaying twice diverged: %d vs %d bytes", len(onceBytes), len(twiceBytes))
	}
}

// TestSealedLogDegradation pins graceful degradation: after persistent
// fsync failure the log seals, new commits fail with a typed error, and
// reads keep serving.
func TestSealedLogDegradation(t *testing.T) {
	fsys := wal.NewFailFS(wal.NewMemFS())
	d, err := Open("db", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Relational.CreateTable("items", itemsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := seedAll(d, 0); err != nil {
		t.Fatal(err)
	}
	fsys.FailSyncsFrom(1) // disk stops accepting fsync, permanently
	err = seedAll(d, 1)
	if !errors.Is(err, wal.ErrSealed) {
		t.Fatalf("commit after fsync failure = %v, want ErrSealed", err)
	}
	if !d.Log().Sealed() || !d.DurabilityStats().Sealed {
		t.Fatal("log not sealed")
	}
	// Further commits are refused outright.
	if err := seedAll(d, 2); !errors.Is(err, wal.ErrSealed) {
		t.Fatalf("commit on sealed log = %v, want ErrSealed", err)
	}
	// Reads keep serving the pre-failure state.
	if got := readSeq(d, "kv", 0); got != 0 {
		t.Fatalf("read after seal = %d, want 0", got)
	}
}

func TestFederationRoundTrip(t *testing.T) {
	fsys := wal.NewMemFS()
	f, err := OpenFederation("fed", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Relational.CreateTable("items", itemsSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		i := i
		if err := f.RunTx(func(ft *federation.FTx) error {
			if err := f.KV.Put(ft.KV(), fmt.Sprintf("k%04d", i), mmvalue.Int(int64(i))); err != nil {
				return err
			}
			items, _ := f.Relational.Table("items")
			return items.Insert(ft.Relational(), mmvalue.ObjectOf("id", i, "seq", i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFederation("fed", Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for i := 0; i < 5; i++ {
		if v, ok := f2.KV.Get(nil, fmt.Sprintf("k%04d", i)); !ok {
			t.Errorf("kv %d lost", i)
		} else if n, _ := v.AsInt(); n != int64(i) {
			t.Errorf("kv %d = %d", i, n)
		}
		items, ok := f2.Relational.Table("items")
		if !ok {
			t.Fatal("items table lost")
		}
		if _, ok := items.Get(nil, i); !ok {
			t.Errorf("row %d lost", i)
		}
	}
	if s := f2.DurabilityStats(); s.Appends != 0 {
		// fresh logs: stats start clean on reopen
		t.Logf("post-recovery appends = %d", s.Appends)
	}
}
