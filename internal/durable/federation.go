package durable

import (
	"fmt"

	"udbench/internal/federation"
	"udbench/internal/wal"
)

// Federation is a polyglot federation with per-store durability: each
// of the five single-model stores keeps its own log (and snapshots) in
// a subdirectory, mirroring how a real federation's members each manage
// their own recovery. There is no cross-store commit record — after a
// crash each store recovers independently, so a 2PC transaction that
// committed in some stores and not others stays torn. That atomicity
// gap is part of what the benchmark measures.
type Federation struct {
	*federation.Federation

	dir  string
	opts Options
	logs map[string]*wal.Log

	// Recovery holds per-store recovery stats keyed by store name.
	Recovery map[string]RecoveryStats
}

// federationStores lists the five member stores of a federation, each
// with its recovery target and durable subdirectory name.
func federationStores(f *federation.Federation) map[string]target {
	return map[string]target{
		"relational": {rel: f.Relational, mgr: f.Relational.Manager()},
		"doc":        {docs: f.Docs, mgr: f.Docs.Manager()},
		"graph":      {graph: f.Graph, mgr: f.Graph.Manager()},
		"kv":         {kv: f.KV, mgr: f.KV.Manager()},
		"xml":        {xml: f.XML, mgr: f.XML.Manager()},
	}
}

// OpenFederation opens (or recovers) a durable federation rooted at
// dir, one subdirectory per member store.
func OpenFederation(dir string, opts Options) (*Federation, error) {
	fsys := opts.fs()
	f := federation.Open()
	out := &Federation{
		Federation: f,
		dir:        dir,
		opts:       opts,
		logs:       make(map[string]*wal.Log),
		Recovery:   make(map[string]RecoveryStats),
	}
	for name, tgt := range federationStores(f) {
		sub := dir + "/" + name
		if err := fsys.MkdirAll(sub); err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
		rec, err := recoverDir(fsys, sub, tgt)
		if err != nil {
			return nil, fmt.Errorf("durable: store %s: %w", name, err)
		}
		log, err := wal.OpenLog(sub+"/"+LogName, wal.Options{
			FS: fsys, Policy: opts.Policy, AsyncInterval: opts.AsyncInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("durable: store %s: %w", name, err)
		}
		log.SetDurableFloor(rec.WatermarkTS)
		tgt.mgr.SetCommitLog(log)
		out.logs[name] = log
		out.Recovery[name] = rec
	}
	return out, nil
}

// Checkpoint snapshots every member store and returns the snapshot
// timestamp per store. Each snapshot is consistent within its store;
// there is no federation-wide cut (the federation has no global
// snapshot to cut at).
func (d *Federation) Checkpoint() (map[string]uint64, error) {
	fsys := d.opts.fs()
	out := make(map[string]uint64)
	for name, tgt := range federationStores(d.Federation) {
		ts, err := checkpoint(fsys, d.dir+"/"+name, tgt)
		if err != nil {
			return nil, fmt.Errorf("durable: store %s: %w", name, err)
		}
		out[name] = ts
	}
	return out, nil
}

// DurabilityStats sums log telemetry across the five member stores.
// Policy and Sealed reflect the combined view: all logs share one
// policy; Sealed is true if any member log sealed.
func (d *Federation) DurabilityStats() *wal.Stats {
	var sum wal.Stats
	for _, log := range d.logs {
		s := log.Stats()
		sum.Policy = s.Policy
		sum.Appends += s.Appends
		sum.OpsLogged += s.OpsLogged
		sum.Batches += s.Batches
		sum.Fsyncs += s.Fsyncs
		sum.Bytes += s.Bytes
		if s.DurableTS > sum.DurableTS {
			sum.DurableTS = s.DurableTS
		}
		sum.Sealed = sum.Sealed || s.Sealed
	}
	return &sum
}

// Close detaches and closes every member log.
func (d *Federation) Close() error {
	var first error
	for name, tgt := range federationStores(d.Federation) {
		tgt.mgr.SetCommitLog(nil)
		if err := d.logs[name].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
