// Package durable binds the storage engines to the write-ahead log in
// internal/wal: it opens (or recovers) a database from a directory,
// attaches group-commit logging to the transaction manager, takes
// consistent snapshots, and replays log records after a crash.
//
// # Recovery architecture
//
// A durable directory holds one append-only log ("wal.log") and zero or
// more atomically-installed snapshots ("snap-<ts>.snap"). Open rebuilds
// the in-memory engine in three steps:
//
//  1. Load the newest readable snapshot (corrupt or torn snapshots fall
//     back to the previous one). The payload is the same op-blob stream
//     the log carries, so one dispatcher applies both.
//  2. Replay the log through the federation of stores, skipping records
//     at or below the snapshot timestamp. Each record is one committed
//     transaction and is re-applied as one transaction, so a replayed
//     prefix is always transaction-consistent. A torn or corrupt tail
//     is truncated — by the log's ordering invariant it can only be a
//     suffix of uncommitted (never acknowledged) records.
//  3. Fast-forward the commit watermark past the last replayed
//     timestamp and attach a fresh log so new commits append after the
//     recovered history.
//
// Replay is idempotent: every op is an upsert or a tombstone keyed by
// its primary identifier, so applying a log twice converges to the same
// state (pinned by TestReplayIdempotent).
package durable

import (
	"fmt"
	"time"

	"udbench/internal/document"
	"udbench/internal/graph"
	"udbench/internal/kv"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/txn"
	"udbench/internal/udbms"
	"udbench/internal/wal"
	"udbench/internal/xmlstore"
)

// LogName is the log file name inside a durable directory.
const LogName = "wal.log"

// applyBatch is how many snapshot ops are grouped into one transaction
// during recovery (log records keep their original transaction
// boundaries instead).
const applyBatch = 512

// Options tunes a durable database.
type Options struct {
	// FS is the backing filesystem (default wal.OSFS).
	FS wal.FS
	// Policy is the fsync policy (default wal.SyncGroup).
	Policy wal.SyncPolicy
	// AsyncInterval is the background flush cadence under
	// wal.SyncAsync.
	AsyncInterval time.Duration
}

func (o Options) fs() wal.FS {
	if o.FS == nil {
		return wal.OSFS{}
	}
	return o.FS
}

// RecoveryStats describes what Open rebuilt.
type RecoveryStats struct {
	// SnapshotTS is the timestamp of the snapshot loaded (0 = none).
	SnapshotTS uint64 `json:"snapshot_ts"`
	// SnapshotOps is the number of ops applied from the snapshot.
	SnapshotOps int `json:"snapshot_ops"`
	// Records is the number of log records replayed (after the skip).
	Records int `json:"records"`
	// OpsReplayed is the number of store ops inside those records.
	OpsReplayed int `json:"ops_replayed"`
	// LogBytes is the size of the valid log prefix.
	LogBytes int64 `json:"log_bytes"`
	// Truncated reports that a torn or corrupt log tail was cut off.
	Truncated bool `json:"truncated"`
	// WatermarkTS is the commit watermark after recovery.
	WatermarkTS uint64 `json:"watermark_ts"`
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// DB is a unified database with durability attached.
type DB struct {
	*udbms.DB

	dir  string
	opts Options
	log  *wal.Log

	// Recovery describes what Open rebuilt from disk.
	Recovery RecoveryStats
}

// Open opens (or creates) a durable unified database rooted at dir:
// it recovers state from the newest snapshot plus the log tail, then
// attaches group-commit logging for new transactions.
func Open(dir string, opts Options) (*DB, error) {
	start := time.Now()
	fsys := opts.fs()
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	db := udbms.Open()
	tgt := target{
		rel: db.Relational, docs: db.Docs, graph: db.Graph,
		kv: db.KV, xml: db.XML, mgr: db.Manager(),
	}
	rec, err := recoverDir(fsys, dir, tgt)
	if err != nil {
		return nil, err
	}
	log, err := wal.OpenLog(dir+"/"+LogName, wal.Options{
		FS: fsys, Policy: opts.Policy, AsyncInterval: opts.AsyncInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	log.SetDurableFloor(rec.WatermarkTS)
	db.Manager().SetCommitLog(log)
	rec.Elapsed = time.Since(start)
	return &DB{DB: db, dir: dir, opts: opts, log: log, Recovery: rec}, nil
}

// recoverDir rebuilds tgt from dir's snapshot and log. It returns the
// recovery stats with everything but Elapsed filled in.
func recoverDir(fsys wal.FS, dir string, tgt target) (RecoveryStats, error) {
	var rec RecoveryStats
	snapTS, payload, ok, err := wal.LatestSnapshot(fsys, dir)
	if err != nil {
		return rec, fmt.Errorf("durable: snapshot: %w", err)
	}
	if ok {
		_, ops, err := wal.DecodeCommit(payload)
		if err != nil {
			return rec, fmt.Errorf("durable: snapshot payload: %w", err)
		}
		for len(ops) > 0 {
			batch := ops
			if len(batch) > applyBatch {
				batch = batch[:applyBatch]
			}
			ops = ops[len(batch):]
			if err := applyOps(tgt, batch); err != nil {
				return rec, fmt.Errorf("durable: snapshot apply: %w", err)
			}
			rec.SnapshotOps += len(batch)
		}
		rec.SnapshotTS = snapTS
	}
	rs, err := wal.Replay(fsys, dir+"/"+LogName, func(ts uint64, ops [][]byte) error {
		if ts <= snapTS {
			return nil // already inside the snapshot
		}
		if err := applyOps(tgt, ops); err != nil {
			return err
		}
		rec.Records++
		rec.OpsReplayed += len(ops)
		return nil
	})
	if err != nil {
		return rec, fmt.Errorf("durable: replay: %w", err)
	}
	rec.LogBytes = rs.Bytes
	rec.Truncated = rs.Truncated
	rec.WatermarkTS = max(rs.LastTS, snapTS)
	tgt.mgr.RestoreWatermark(txn.TS(rec.WatermarkTS))
	return rec, nil
}

// Checkpoint writes a snapshot of the current committed state and
// returns its timestamp. The snapshot is a consistent cut at the commit
// watermark: it runs under one read transaction, so replay afterwards
// only needs the log records above the returned timestamp.
func (d *DB) Checkpoint() (uint64, error) {
	tgt := target{
		rel: d.Relational, docs: d.Docs, graph: d.Graph,
		kv: d.KV, xml: d.XML, mgr: d.Manager(),
	}
	return checkpoint(d.opts.fs(), d.dir, tgt)
}

func checkpoint(fsys wal.FS, dir string, tgt target) (uint64, error) {
	tx := tgt.mgr.Begin()
	defer tx.Abort()
	ts := uint64(tx.BeginTS())
	ops := encodeState(tgt, tx)
	payload := wal.AppendCommit(nil, ts, ops)
	if _, err := wal.WriteSnapshot(fsys, dir, ts, payload); err != nil {
		return 0, fmt.Errorf("durable: checkpoint: %w", err)
	}
	return ts, nil
}

// DurabilityStats returns the log's telemetry.
func (d *DB) DurabilityStats() *wal.Stats {
	s := d.log.Stats()
	return &s
}

// Log exposes the underlying write-ahead log (tests and experiments).
func (d *DB) Log() *wal.Log { return d.log }

// Close detaches logging and closes the log. The in-memory engine
// stays usable (non-durably) afterwards.
func (d *DB) Close() error {
	d.Manager().SetCommitLog(nil)
	return d.log.Close()
}

// target is the set of stores a log applies to. The unified engine
// fills every field from one udbms.DB; the federation builds one
// target per store.
type target struct {
	rel   *relational.DB
	docs  *document.Store
	graph *graph.Store
	kv    *kv.Store
	xml   *xmlstore.Store
	mgr   *txn.Manager
}

// applyOps re-applies one committed transaction's ops inside a single
// transaction, preserving the original atomicity boundary.
func applyOps(tgt target, ops [][]byte) error {
	return tgt.mgr.RunWith(3, func(tx *txn.Tx) error {
		for _, op := range ops {
			if err := applyOp(tgt, tx, op); err != nil {
				return err
			}
		}
		return nil
	})
}

// applyOp dispatches one op blob to its store. Every path is an upsert
// or an idempotent tombstone, so replaying a prefix twice converges.
func applyOp(tgt target, tx *txn.Tx, op []byte) error {
	d := wal.DecodeOp(op)
	switch d.Code() {
	case wal.OpKVPut:
		key := d.String()
		v, err := decodeValue(d)
		if err != nil {
			return err
		}
		return tgt.kv.Put(tx, key, v)
	case wal.OpKVDelete:
		key := d.String()
		if err := d.Done(); err != nil {
			return err
		}
		return tgt.kv.Delete(tx, key)
	case wal.OpDocPut:
		coll, _ := d.String(), d.String() // id is re-derived from the doc
		v, err := decodeValue(d)
		if err != nil {
			return err
		}
		return tgt.docs.Collection(coll).ApplyPut(tx, v)
	case wal.OpDocDelete:
		coll, id := d.String(), d.String()
		if err := d.Done(); err != nil {
			return err
		}
		return tgt.docs.Collection(coll).Delete(tx, id)
	case wal.OpDocCreateIndex:
		coll, path := d.String(), d.String()
		if err := d.Done(); err != nil {
			return err
		}
		if c := tgt.docs.Collection(coll); !c.HasIndex(path) {
			return c.CreateIndex(path)
		}
		return nil
	case wal.OpRelCreateTable:
		name, schema, err := relational.DecodeCreateTable(d)
		if err != nil {
			return err
		}
		if _, exists := tgt.rel.Table(name); exists {
			return nil
		}
		_, err = tgt.rel.CreateTable(name, schema)
		return err
	case wal.OpRelCreateIndex:
		name, col := d.String(), d.String()
		if err := d.Done(); err != nil {
			return err
		}
		t, ok := tgt.rel.Table(name)
		if !ok {
			return fmt.Errorf("durable: create-index on unknown table %q", name)
		}
		if !t.HasIndex(col) {
			return t.CreateIndex(col)
		}
		return nil
	case wal.OpRelPut:
		name := d.String()
		v, err := decodeValue(d)
		if err != nil {
			return err
		}
		t, ok := tgt.rel.Table(name)
		if !ok {
			return fmt.Errorf("durable: put on unknown table %q", name)
		}
		return t.ApplyPut(tx, v)
	case wal.OpRelDelete:
		name, pk := d.String(), d.String()
		if err := d.Done(); err != nil {
			return err
		}
		t, ok := tgt.rel.Table(name)
		if !ok {
			return fmt.Errorf("durable: delete on unknown table %q", name)
		}
		return t.ApplyDelete(tx, pk)
	case wal.OpGraphVertex:
		id, label := d.String(), d.String()
		v, err := decodeValue(d)
		if err != nil {
			return err
		}
		return tgt.graph.ApplyVertex(tx, graph.VID(id), label, v)
	case wal.OpGraphEdge:
		id, label := d.String(), d.String()
		from, to := d.String(), d.String()
		v, err := decodeValue(d)
		if err != nil {
			return err
		}
		return tgt.graph.ApplyEdge(tx, graph.EID(id), label, graph.VID(from), graph.VID(to), v)
	case wal.OpGraphVertexProps:
		id := d.String()
		v, err := decodeValue(d)
		if err != nil {
			return err
		}
		return tgt.graph.SetVertexProps(tx, graph.VID(id),
			func(mmvalue.Value) (mmvalue.Value, error) { return v, nil })
	case wal.OpGraphRemoveVertex:
		id := d.String()
		if err := d.Done(); err != nil {
			return err
		}
		return tgt.graph.RemoveVertex(tx, graph.VID(id))
	case wal.OpGraphRemoveEdge:
		id := d.String()
		if err := d.Done(); err != nil {
			return err
		}
		return tgt.graph.RemoveEdge(tx, graph.EID(id))
	case wal.OpXMLPut:
		id := d.String()
		raw := d.Bytes()
		if err := d.Done(); err != nil {
			return err
		}
		doc, err := xmlstore.Parse(raw)
		if err != nil {
			return fmt.Errorf("durable: xml op: %w", err)
		}
		return tgt.xml.Put(tx, id, doc)
	case wal.OpXMLDelete:
		id := d.String()
		if err := d.Done(); err != nil {
			return err
		}
		return tgt.xml.Delete(tx, id)
	default:
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("durable: unknown op code 0x%02x", d.Code())
	}
}

// decodeValue reads the final Bytes field of d as a binary mmvalue.
func decodeValue(d *wal.OpDecoder) (mmvalue.Value, error) {
	raw := d.Bytes()
	if err := d.Done(); err != nil {
		return mmvalue.Null, err
	}
	v, rest, err := mmvalue.DecodeBinary(raw)
	if err != nil {
		return mmvalue.Null, err
	}
	if len(rest) != 0 {
		return mmvalue.Null, fmt.Errorf("durable: %d trailing bytes after value", len(rest))
	}
	return v, nil
}

// encodeState renders everything visible to tx as one op stream, in
// dependency order: DDL before rows, vertices before edges. The stream
// is the snapshot payload and uses the exact codec the log uses, so
// applying it goes through the same dispatcher as replay.
func encodeState(tgt target, tx *txn.Tx) [][]byte {
	var ops [][]byte
	if tgt.rel != nil {
		for _, name := range tgt.rel.TableNames() {
			t, _ := tgt.rel.Table(name)
			ops = append(ops, relational.EncodeCreateTable(name, t.Schema()))
			for _, col := range t.IndexedColumns() {
				ops = append(ops, wal.NewOp(wal.OpRelCreateIndex).String(name).String(col).Build())
			}
			t.Stream(tx, nil, func(row mmvalue.Value) bool {
				ops = append(ops, wal.NewOp(wal.OpRelPut).String(name).
					Bytes(mmvalue.AppendBinary(nil, row)).Build())
				return true
			})
		}
	}
	if tgt.docs != nil {
		for _, name := range tgt.docs.CollectionNames() {
			c := tgt.docs.Collection(name)
			for _, path := range c.IndexPaths() {
				ops = append(ops, wal.NewOp(wal.OpDocCreateIndex).String(name).String(path).Build())
			}
			c.Stream(tx, nil, func(doc mmvalue.Value) bool {
				id := docID(doc)
				ops = append(ops, wal.NewOp(wal.OpDocPut).String(name).String(id).
					Bytes(mmvalue.AppendBinary(nil, doc)).Build())
				return true
			})
		}
	}
	if tgt.graph != nil {
		tgt.graph.Vertices(tx, func(v graph.Vertex) bool {
			ops = append(ops, wal.NewOp(wal.OpGraphVertex).String(string(v.ID)).String(v.Label).
				Bytes(mmvalue.AppendBinary(nil, v.Props)).Build())
			return true
		})
		tgt.graph.Edges(tx, func(e graph.Edge) bool {
			ops = append(ops, wal.NewOp(wal.OpGraphEdge).String(string(e.ID)).String(e.Label).
				String(string(e.From)).String(string(e.To)).
				Bytes(mmvalue.AppendBinary(nil, e.Props)).Build())
			return true
		})
	}
	if tgt.kv != nil {
		tgt.kv.Scan(tx, "", "", func(key string, value mmvalue.Value) bool {
			ops = append(ops, wal.NewOp(wal.OpKVPut).String(key).
				Bytes(mmvalue.AppendBinary(nil, value)).Build())
			return true
		})
	}
	if tgt.xml != nil {
		tgt.xml.Scan(tx, func(id string, doc *xmlstore.Node) bool {
			ops = append(ops, wal.NewOp(wal.OpXMLPut).String(id).Bytes(xmlstore.Marshal(doc)).Build())
			return true
		})
	}
	return ops
}

func docID(doc mmvalue.Value) string {
	if obj, ok := doc.AsObject(); ok {
		if idv, ok := obj.Get("_id"); ok {
			if id, ok := idv.AsString(); ok {
				return id
			}
		}
	}
	return ""
}
