// Timeseries dataset: the append-heavy suite's data shape. A small
// relational catalog of series (id, name, points counter) fronts a
// key-value store of ordered measurement points, so windowed range
// scans and per-series appends exercise the KV scan path and the
// relational row that every ingest transaction must also touch.
package datagen

import (
	"fmt"

	"udbench/internal/mmvalue"
	"udbench/internal/relational"
)

// Reference timeseries entity counts at scale factor 1.
const (
	BaseSeries = 100
	BasePoints = 6000
	// SeriesZipfTheta skews point placement toward hot series, so
	// appends and scans contend on the same few relational rows.
	SeriesZipfTheta = 0.8
)

// TimeseriesDataset is the materialized timeseries suite dataset.
type TimeseriesDataset struct {
	Config Config
	// Series are relational rows (schema SeriesSchema()): id, name,
	// points (base point count, bumped by every append), base (the
	// immutable generated count appends are measured against).
	Series []mmvalue.Value
	// Points maps kv key -> measurement payload, in PointKeys order.
	Points    map[string]mmvalue.Value
	PointKeys []string
}

// SeriesSchema returns the relational schema of the series catalog.
func SeriesSchema() relational.Schema {
	return relational.MustSchema("id",
		relational.Column{Name: "id", Type: relational.TypeInt},
		relational.Column{Name: "name", Type: relational.TypeString},
		relational.Column{Name: "points", Type: relational.TypeInt},
		relational.Column{Name: "base", Type: relational.TypeInt},
	)
}

// TimeseriesCounts returns the scaled entity counts for a config.
func TimeseriesCounts(cfg Config) (series, points int) {
	sf := cfg.ScaleFactor
	if sf < 0.01 {
		sf = 0.01
	}
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	return scale(BaseSeries), scale(BasePoints)
}

// SeriesPointKey renders the kv key of generated point seq of a series
// (both 1-based). Keys of one series sort by seq, so a window scan is
// one ordered kv range.
func SeriesPointKey(series, seq int) string {
	return fmt.Sprintf("ts/%06d/%08d", series, seq)
}

// SeriesAppendKey renders the kv key of a runtime-appended point. The
// "x-" segment sorts after every generated %08d seq, keeping appends
// out of base windows while staying inside the series prefix — and
// countable on their own sub-prefix (SeriesAppendPrefix) for the
// watermark probe.
func SeriesAppendKey(series int, freshID string) string {
	return fmt.Sprintf("ts/%06d/x-%s", series, freshID)
}

// SeriesPrefix is the kv prefix holding every point of a series.
func SeriesPrefix(series int) string { return fmt.Sprintf("ts/%06d/", series) }

// SeriesAppendPrefix is the kv prefix holding only the runtime appends
// of a series.
func SeriesAppendPrefix(series int) string { return fmt.Sprintf("ts/%06d/x-", series) }

// GenerateTimeseries materializes the timeseries dataset. Generation
// is deterministic in (Seed, ScaleFactor), like Generate.
func GenerateTimeseries(cfg Config) *TimeseriesDataset {
	rng := NewRNG(cfg.Seed*0x9e3779b9 + 0x7153)
	nSeries, nPoints := TimeseriesCounts(cfg)
	ds := &TimeseriesDataset{
		Config: cfg,
		Points: make(map[string]mmvalue.Value, nPoints),
	}
	metricNames := []string{"cpu", "mem", "disk", "net", "rps", "p99", "errs", "temp"}
	// Zipf-place the points first so each series row records its own
	// base count.
	seriesZ := NewZipf(rng, nSeries, SeriesZipfTheta)
	perSeries := make([]int, nSeries+1)
	for i := 0; i < nPoints; i++ {
		sid := seriesZ.Next() + 1
		perSeries[sid]++
		seq := perSeries[sid]
		key := SeriesPointKey(sid, seq)
		ds.Points[key] = mmvalue.ObjectOf(
			"t", seq,
			"v", float64(rng.Intn(100000))/100,
		)
		ds.PointKeys = append(ds.PointKeys, key)
	}
	for i := 1; i <= nSeries; i++ {
		ds.Series = append(ds.Series, mmvalue.ObjectOf(
			"id", i,
			"name", fmt.Sprintf("%s-%03d", Pick(rng, metricNames), i),
			"points", perSeries[i],
			"base", perSeries[i],
		))
	}
	return ds
}

// NumSeries returns the series count.
func (ds *TimeseriesDataset) NumSeries() int { return len(ds.Series) }

// NumPoints returns the generated point count.
func (ds *TimeseriesDataset) NumPoints() int { return len(ds.PointKeys) }

// Load copies the dataset into the target stores (auto-committed).
func (ds *TimeseriesDataset) Load(t Target) error {
	series, err := t.Relational.CreateTable("series", SeriesSchema())
	if err != nil {
		return err
	}
	for _, row := range ds.Series {
		if err := series.Insert(nil, row); err != nil {
			return err
		}
	}
	for _, key := range ds.PointKeys {
		if err := t.KV.Put(nil, key, ds.Points[key]); err != nil {
			return err
		}
	}
	return nil
}
