package datagen

import (
	"fmt"
	"strings"
	"testing"

	"udbench/internal/graph"
	"udbench/internal/mmvalue"
	"udbench/internal/udbms"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds should diverge")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		if r.Int63() < 0 {
			t.Fatal("Int63 negative")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(1)
	z := NewZipf(r, 100, 0.99)
	counts := make([]int, 100)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[50]*3 {
		t.Errorf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	// theta 0 is roughly uniform.
	z0 := NewZipf(r, 10, 0)
	c0 := make([]int, 10)
	for i := 0; i < draws; i++ {
		c0[z0.Next()]++
	}
	for i, c := range c0 {
		if c < draws/20 {
			t.Errorf("uniform zipf rank %d undersampled: %d", i, c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{ScaleFactor: 0.05, Seed: 99}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Customers) != len(b.Customers) || len(a.Orders) != len(b.Orders) {
		t.Fatal("sizes differ across runs")
	}
	for i := range a.Customers {
		if !mmvalue.Equal(a.Customers[i], b.Customers[i]) {
			t.Fatalf("customer %d differs", i)
		}
	}
	for i := range a.Orders {
		if !mmvalue.Equal(a.Orders[i], b.Orders[i]) {
			t.Fatalf("order %d differs", i)
		}
	}
	if len(a.KnowsEdges) != len(b.KnowsEdges) {
		t.Fatal("graph differs")
	}
	// Different seed differs.
	c := Generate(Config{ScaleFactor: 0.05, Seed: 100})
	diff := false
	for i := range a.Customers {
		if !mmvalue.Equal(a.Customers[i], c.Customers[i]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should give different data")
	}
}

func TestGenerateCountsScale(t *testing.T) {
	small := Generate(Config{ScaleFactor: 0.02, Seed: 1})
	big := Generate(Config{ScaleFactor: 0.1, Seed: 1})
	if len(big.Customers) != 5*len(small.Customers) {
		t.Errorf("customer scaling wrong: %d vs %d", len(small.Customers), len(big.Customers))
	}
	if len(big.Orders) != 5*len(small.Orders) {
		t.Errorf("order scaling wrong: %d vs %d", len(small.Orders), len(big.Orders))
	}
	// Clamped minimum.
	tiny := Generate(Config{ScaleFactor: 0, Seed: 1})
	if len(tiny.Customers) < 1 {
		t.Error("minimum scale should yield at least 1 customer")
	}
	cu, pr, or := Config{ScaleFactor: 1}.Counts()
	if cu != BaseCustomers || pr != BaseProducts || or != BaseOrders {
		t.Errorf("SF1 counts = %d/%d/%d", cu, pr, or)
	}
}

func TestCrossModelReferentialIntegrity(t *testing.T) {
	ds := Generate(Config{ScaleFactor: 0.05, Seed: 7})
	nCust := len(ds.Customers)
	prodIDs := make(map[string]bool)
	for _, p := range ds.Products {
		id, _ := p.MustObject().Get("_id")
		prodIDs[id.MustString()] = true
	}
	orderIDs := make(map[string]bool)
	for _, o := range ds.Orders {
		obj := o.MustObject()
		id, _ := obj.Get("_id")
		orderIDs[id.MustString()] = true
		cid, _ := obj.Get("customer_id")
		if cid.MustInt() < 1 || cid.MustInt() > int64(nCust) {
			t.Fatalf("order references missing customer %d", cid.MustInt())
		}
		items, _ := obj.GetOr("items", mmvalue.Null).AsArray()
		if len(items) == 0 {
			t.Fatal("order without items")
		}
		for _, it := range items {
			pid, _ := it.MustObject().Get("product_id")
			if !prodIDs[pid.MustString()] {
				t.Fatalf("order references missing product %s", pid)
			}
		}
	}
	// Every order has an invoice; invoice ids match orders.
	if len(ds.Invoices) != len(ds.Orders) {
		t.Errorf("invoices = %d, orders = %d", len(ds.Invoices), len(ds.Orders))
	}
	for oid, inv := range ds.Invoices {
		if !orderIDs[oid] {
			t.Errorf("invoice for missing order %s", oid)
		}
		if v, _ := inv.Attr("id"); v != oid {
			t.Errorf("invoice attr id %s != key %s", v, oid)
		}
	}
	// Feedback keys parse back to valid customer and order.
	for _, k := range ds.FeedbackKeys {
		parts := strings.Split(k, "/")
		if len(parts) != 3 || parts[0] != "feedback" {
			t.Fatalf("bad feedback key %s", k)
		}
		if !orderIDs[parts[2]] {
			t.Errorf("feedback for missing order %s", parts[2])
		}
	}
	// Knows edges link valid customers, no self loops, no duplicates.
	seen := map[string]bool{}
	for _, e := range ds.KnowsEdges {
		if e.From == e.To {
			t.Fatal("self loop in knows")
		}
		if seen[e.ID] {
			t.Fatal("duplicate knows edge id")
		}
		seen[e.ID] = true
	}
	// Purchases reference valid products.
	for _, e := range ds.PurchaseEdges {
		if !strings.HasPrefix(e.To, "p") {
			t.Fatalf("purchase edge to non-product %s", e.To)
		}
	}
	// Feedback rate near the configured value.
	rate := float64(len(ds.FeedbackKeys)) / float64(len(ds.Orders))
	if rate < FeedbackRate-0.15 || rate > FeedbackRate+0.15 {
		t.Errorf("feedback rate = %.2f", rate)
	}
}

func TestLoadIntoUDBMS(t *testing.T) {
	ds := Generate(Config{ScaleFactor: 0.02, Seed: 3})
	db := udbms.Open()
	err := ds.Load(Target{
		Relational: db.Relational,
		Docs:       db.Docs,
		Graph:      db.Graph,
		KV:         db.KV,
		XML:        db.XML,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Tables["customer"] != len(ds.Customers) {
		t.Errorf("customers loaded = %d, want %d", st.Tables["customer"], len(ds.Customers))
	}
	if st.Collections["orders"] != len(ds.Orders) {
		t.Errorf("orders loaded = %d", st.Collections["orders"])
	}
	if st.Collections["products"] != len(ds.Products) {
		t.Errorf("products loaded = %d", st.Collections["products"])
	}
	if st.KVPairs != len(ds.FeedbackKeys) {
		t.Errorf("kv loaded = %d", st.KVPairs)
	}
	if st.XMLDocs != len(ds.Orders) {
		t.Errorf("xml loaded = %d", st.XMLDocs)
	}
	wantV := len(ds.Customers) + len(ds.Products)
	if st.Vertices != wantV {
		t.Errorf("vertices = %d, want %d", st.Vertices, wantV)
	}
	wantE := len(ds.KnowsEdges) + len(ds.PurchaseEdges)
	if st.Edges != wantE {
		t.Errorf("edges = %d, want %d", st.Edges, wantE)
	}
	// Standard indexes exist.
	cust, _ := db.Relational.Table("customer")
	if !cust.HasIndex("city") {
		t.Error("customer.city index missing")
	}
	if !db.Docs.Collection("orders").HasIndex("customer_id") {
		t.Error("orders.customer_id index missing")
	}
	// Spot check a cross-model chain: first order's customer exists in
	// the relational table and as a graph vertex.
	o := ds.Orders[0].MustObject()
	cid, _ := o.Get("customer_id")
	if _, ok := cust.Get(nil, cid.MustInt()); !ok {
		t.Error("order's customer missing from relational table")
	}
	if _, ok := db.Graph.GetVertex(nil, graph.VID(CustomerVID(int(cid.MustInt())))); !ok {
		t.Error("order's customer missing from graph")
	}
}

func TestIDHelpers(t *testing.T) {
	if ProductID(3) != "p000003" || OrderID(12) != "o00000012" || CustomerVID(5) != "c000005" {
		t.Error("id format changed")
	}
	if FeedbackKey(7, "o00000001") != "feedback/000007/o00000001" {
		t.Errorf("FeedbackKey = %s", FeedbackKey(7, "o00000001"))
	}
}

func BenchmarkGenerateSF01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Config{ScaleFactor: 0.1, Seed: uint64(i)})
	}
}

func BenchmarkLoadSF01(b *testing.B) {
	ds := Generate(Config{ScaleFactor: 0.1, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := udbms.Open()
		if err := ds.Load(Target{Relational: db.Relational, Docs: db.Docs, Graph: db.Graph, KV: db.KV, XML: db.XML}); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprint()
}
