package datagen

import "math"

// RNG is a small deterministic SplitMix64 generator. UDBench needs
// byte-for-byte reproducible datasets across runs and platforms, so it
// does not depend on math/rand's generator or ordering.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("datagen: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Pick returns a uniformly chosen element of items.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// Zipf draws Zipf-distributed ranks in [0, n) with exponent theta.
// theta = 0 degenerates to uniform. Implemented with the standard
// inverse-CDF rejection method over the generalized harmonic numbers,
// precomputed once.
type Zipf struct {
	rng   *RNG
	n     int
	theta float64
	cdf   []float64
}

// NewZipf builds a Zipf sampler over n items with skew theta >= 0.
func NewZipf(rng *RNG, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("datagen: Zipf with n <= 0")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Next draws the next rank in [0, n); rank 0 is the most popular.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
