// Tenants dataset: the multi-tenant SaaS suite's data shape. A
// relational tenant catalog (plan, per-tenant ticket counter) fronts a
// document collection of support tickets. Ticket placement is heavily
// Zipf-skewed, so tenant 1 is the hot tenant whose catalog row and
// tenant-scoped queries concentrate lock and scan traffic.
package datagen

import (
	"fmt"

	"udbench/internal/mmvalue"
	"udbench/internal/relational"
)

// Reference tenant entity counts at scale factor 1.
const (
	BaseTenants = 60
	BaseTickets = 5000
	// TenantZipfTheta skews ticket placement; at 0.9 the top tenant
	// owns a large fraction of all tickets.
	TenantZipfTheta = 0.9
)

// TenantsDataset is the materialized multi-tenant suite dataset.
type TenantsDataset struct {
	Config Config
	// Tenants are relational rows (schema TenantSchema()): id, name,
	// plan, tickets (the per-tenant ticket counter every ticket-open
	// transaction bumps — initialized to the generated base count, so
	// the counter-vs-collection consistency probe starts valid).
	Tenants []mmvalue.Value
	// Tickets are JSON documents (_id TicketID(i)).
	Tickets []mmvalue.Value
}

// TenantSchema returns the relational schema of the tenant catalog.
func TenantSchema() relational.Schema {
	return relational.MustSchema("id",
		relational.Column{Name: "id", Type: relational.TypeInt},
		relational.Column{Name: "name", Type: relational.TypeString},
		relational.Column{Name: "plan", Type: relational.TypeString},
		relational.Column{Name: "tickets", Type: relational.TypeInt},
	)
}

// TenantCounts returns the scaled entity counts for a config.
func TenantCounts(cfg Config) (tenants, tickets int) {
	sf := cfg.ScaleFactor
	if sf < 0.01 {
		sf = 0.01
	}
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	return scale(BaseTenants), scale(BaseTickets)
}

// TicketID renders the document id of generated ticket i (1-based).
func TicketID(i int) string { return fmt.Sprintf("tk%08d", i) }

// GenerateTenants materializes the tenants dataset deterministically.
func GenerateTenants(cfg Config) *TenantsDataset {
	rng := NewRNG(cfg.Seed*0x9e3779b9 + 0x7e4a)
	nTen, nTick := TenantCounts(cfg)
	ds := &TenantsDataset{Config: cfg}
	plans := []string{"free", "team", "business", "enterprise"}
	ticketStatuses := []string{"open", "open", "pending", "closed"} // ~half open
	subjects := []string{"login fails", "billing question", "export broken",
		"rate limited", "slow dashboard", "webhook retries", "sso config"}
	tenantZ := NewZipf(rng, nTen, TenantZipfTheta)
	perTenant := make([]int, nTen+1)
	for i := 1; i <= nTick; i++ {
		tid := tenantZ.Next() + 1
		perTenant[tid]++
		ds.Tickets = append(ds.Tickets, mmvalue.ObjectOf(
			"_id", TicketID(i),
			"tenant_id", tid,
			"status", Pick(rng, ticketStatuses),
			"priority", 1+rng.Intn(5),
			"subject", Pick(rng, subjects),
			"body", fmt.Sprintf("ticket %d for tenant %d: %s", i, tid, Pick(rng, subjects)),
		))
	}
	for i := 1; i <= nTen; i++ {
		ds.Tenants = append(ds.Tenants, mmvalue.ObjectOf(
			"id", i,
			"name", fmt.Sprintf("tenant-%04d", i),
			"plan", Pick(rng, plans),
			"tickets", perTenant[i],
		))
	}
	return ds
}

// NumTenants returns the tenant count.
func (ds *TenantsDataset) NumTenants() int { return len(ds.Tenants) }

// NumTickets returns the generated ticket count.
func (ds *TenantsDataset) NumTickets() int { return len(ds.Tickets) }

// Load copies the dataset into the target stores and creates the
// tenant-scoping index every inbox query probes.
func (ds *TenantsDataset) Load(t Target) error {
	tenants, err := t.Relational.CreateTable("tenant", TenantSchema())
	if err != nil {
		return err
	}
	for _, row := range ds.Tenants {
		if err := tenants.Insert(nil, row); err != nil {
			return err
		}
	}
	tickets := t.Docs.Collection("tickets")
	for _, doc := range ds.Tickets {
		if err := tickets.Insert(nil, doc); err != nil {
			return err
		}
	}
	return tickets.CreateIndex("tenant_id")
}
