// Package datagen generates the UDBMS benchmark dataset of Figure 1:
// relational Customers, JSON Orders and Products, key-value Feedback,
// XML Invoices, and a property graph of social "knows" edges plus
// customer→product "purchased" edges — all correlated by shared
// identifiers so that cross-model queries and transactions have
// meaningful join paths.
//
// Generation is deterministic: the same (Seed, ScaleFactor) always
// produces the same dataset, which is what lets the conversion
// experiments validate against gold-standard outputs.
package datagen

import (
	"fmt"

	"udbench/internal/document"
	"udbench/internal/graph"
	"udbench/internal/kv"
	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/xmlstore"
)

// Config controls dataset size and randomness.
type Config struct {
	// ScaleFactor scales every entity count linearly; SF 1 is the
	// reference size below. Values < 0.01 are clamped.
	ScaleFactor float64
	// Seed drives the deterministic generator.
	Seed uint64
}

// Reference entity counts at scale factor 1.
const (
	BaseCustomers = 1000
	BaseProducts  = 300
	BaseOrders    = 3000
	// KnowsPerCustomer is the average out-degree of the social graph.
	KnowsPerCustomer = 4
	// FeedbackRate is the fraction of orders that have feedback.
	FeedbackRate = 0.6
	// MaxItemsPerOrder bounds order line counts (1..Max).
	MaxItemsPerOrder = 4
)

// Dataset is the fully materialized benchmark dataset: the in-memory
// gold standard that loaders copy into engines and that the conversion
// experiments compare against.
type Dataset struct {
	Config Config

	// Customers are relational rows (schema CustomerSchema()).
	Customers []mmvalue.Value
	// Products and Orders are JSON documents.
	Products []mmvalue.Value
	Orders   []mmvalue.Value
	// Feedback maps kv key -> payload object.
	Feedback map[string]mmvalue.Value
	// FeedbackKeys lists feedback keys in insertion order.
	FeedbackKeys []string
	// Invoices maps order id -> XML tree.
	Invoices map[string]*xmlstore.Node
	// KnowsEdges and PurchaseEdges are graph edges between customer
	// vertices (c<id>) and product vertices (p<id>).
	KnowsEdges    []EdgeSpec
	PurchaseEdges []EdgeSpec
}

// EdgeSpec describes one generated graph edge.
type EdgeSpec struct {
	ID       string
	From, To string
	Label    string
	Props    mmvalue.Value
}

// CustomerSchema returns the relational schema of the Customer table.
func CustomerSchema() relational.Schema {
	return relational.MustSchema("id",
		relational.Column{Name: "id", Type: relational.TypeInt},
		relational.Column{Name: "name", Type: relational.TypeString},
		relational.Column{Name: "age", Type: relational.TypeInt},
		relational.Column{Name: "city", Type: relational.TypeString},
		relational.Column{Name: "country", Type: relational.TypeString},
		relational.Column{Name: "vip", Type: relational.TypeBool},
	)
}

var (
	cities    = []string{"Helsinki", "Turku", "Tampere", "Oulu", "Espoo", "Vantaa", "Lahti", "Kuopio"}
	countries = []string{"FI", "SE", "NO", "DK", "EE"}
	brands    = []string{"Acme", "Globex", "Initech", "Umbrella", "Hooli", "Vandelay"}
	cats      = []string{"electronics", "books", "garden", "toys", "sports", "grocery"}
	tagPool   = []string{"new", "sale", "eco", "premium", "refurb", "import", "local"}
	statuses  = []string{"open", "paid", "shipped", "returned"}
	currs     = []string{"EUR", "USD", "SEK"}
	first     = []string{"Aino", "Eino", "Mika", "Sari", "Ville", "Liisa", "Jukka", "Anna", "Pekka", "Tiina"}
	last      = []string{"Korhonen", "Virtanen", "Nieminen", "Laine", "Heikkinen", "Koskinen"}
)

// Counts returns the scaled entity counts for a config.
func (c Config) Counts() (customers, products, orders int) {
	sf := c.ScaleFactor
	if sf < 0.01 {
		sf = 0.01
	}
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	return scale(BaseCustomers), scale(BaseProducts), scale(BaseOrders)
}

// Generate materializes the dataset.
func Generate(cfg Config) *Dataset {
	rng := NewRNG(cfg.Seed*0x9e3779b9 + 0x5eed)
	nCust, nProd, nOrd := cfg.Counts()
	ds := &Dataset{
		Config:   cfg,
		Feedback: make(map[string]mmvalue.Value),
		Invoices: make(map[string]*xmlstore.Node, nOrd),
	}

	// Customers (relational).
	for i := 1; i <= nCust; i++ {
		ds.Customers = append(ds.Customers, mmvalue.ObjectOf(
			"id", i,
			"name", Pick(rng, first)+" "+Pick(rng, last),
			"age", 18+rng.Intn(60),
			"city", Pick(rng, cities),
			"country", Pick(rng, countries),
			"vip", rng.Intn(10) == 0,
		))
	}

	// Products (JSON documents).
	for i := 1; i <= nProd; i++ {
		nTags := 1 + rng.Intn(3)
		tags := make([]mmvalue.Value, nTags)
		for ti := 0; ti < nTags; ti++ {
			tags[ti] = mmvalue.String(Pick(rng, tagPool))
		}
		ds.Products = append(ds.Products, mmvalue.ObjectOf(
			"_id", productID(i),
			"title", fmt.Sprintf("%s %s #%d", Pick(rng, brands), Pick(rng, cats), i),
			"brand", Pick(rng, brands),
			"category", Pick(rng, cats),
			"price", float64(rng.Intn(20000))/100+1,
			"stock", 50+rng.Intn(200),
			"tags", mmvalue.Array(tags...),
		))
	}

	// Orders (JSON), Feedback (KV), Invoices (XML), purchase edges.
	// Popular products are bought more often (Zipf over product rank).
	prodZipf := NewZipf(rng, nProd, 0.8)
	custZipf := NewZipf(rng, nCust, 0.5)
	for i := 1; i <= nOrd; i++ {
		oid := orderID(i)
		cid := custZipf.Next() + 1
		nItems := 1 + rng.Intn(MaxItemsPerOrder)
		items := make([]mmvalue.Value, nItems)
		total := 0.0
		for li := 0; li < nItems; li++ {
			p := prodZipf.Next()
			prodObj := ds.Products[p].MustObject()
			price, _ := prodObj.GetOr("price", mmvalue.Float(1)).AsFloat()
			qty := 1 + rng.Intn(3)
			total += price * float64(qty)
			pidVal, _ := prodObj.Get("_id")
			items[li] = mmvalue.ObjectOf("product_id", pidVal.MustString(), "qty", qty, "price", price)
			ds.PurchaseEdges = append(ds.PurchaseEdges, EdgeSpec{
				ID:    fmt.Sprintf("buy-%s-%d", oid, li),
				From:  customerVID(cid),
				To:    "p" + pidVal.MustString()[1:], // product vid shares numeric suffix
				Label: "purchased",
				Props: mmvalue.ObjectOf("order", oid, "qty", qty),
			})
		}
		total = float64(int(total*100)) / 100
		day := 1 + rng.Intn(28)
		month := 1 + rng.Intn(12)
		ds.Orders = append(ds.Orders, mmvalue.ObjectOf(
			"_id", oid,
			"customer_id", cid,
			"status", Pick(rng, statuses),
			"date", fmt.Sprintf("2016-%02d-%02d", month, day),
			"total", total,
			"items", mmvalue.Array(items...),
		))

		// Feedback for ~FeedbackRate of orders.
		if rng.Float64() < FeedbackRate {
			key := FeedbackKey(cid, oid)
			ds.Feedback[key] = mmvalue.ObjectOf(
				"rating", 1+rng.Intn(5),
				"text", Pick(rng, []string{"great", "ok", "late delivery", "broken", "perfect", "meh"}),
			)
			ds.FeedbackKeys = append(ds.FeedbackKeys, key)
		}

		// Invoice (XML) mirrors the order.
		inv := xmlstore.NewElement("invoice",
			xmlstore.Attr{Name: "id", Value: oid},
			xmlstore.Attr{Name: "currency", Value: Pick(rng, currs)},
		)
		custEl := xmlstore.NewElement("customer", xmlstore.Attr{Name: "cid", Value: fmt.Sprint(cid)})
		linesEl := xmlstore.NewElement("lines")
		for _, it := range items {
			io := it.MustObject()
			pid, _ := io.Get("product_id")
			qty, _ := io.Get("qty")
			price, _ := io.Get("price")
			pf, _ := price.AsFloat()
			linesEl.Append(xmlstore.NewElement("line",
				xmlstore.Attr{Name: "sku", Value: pid.MustString()},
				xmlstore.Attr{Name: "qty", Value: fmt.Sprint(qty.MustInt())},
				xmlstore.Attr{Name: "price", Value: fmt.Sprintf("%.2f", pf)},
			))
		}
		totalEl := xmlstore.NewElement("total").Append(xmlstore.NewText(fmt.Sprintf("%.2f", total)))
		inv.Append(custEl, linesEl, totalEl)
		ds.Invoices[oid] = inv
	}

	// Social graph: preferential attachment-flavoured knows edges.
	edgeSeen := make(map[[2]int]bool)
	targetEdges := nCust * KnowsPerCustomer / 2
	for len(ds.KnowsEdges) < targetEdges {
		a := rng.Intn(nCust) + 1
		b := custZipf.Next() + 1 // popular customers attract edges
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if edgeSeen[[2]int{a, b}] {
			continue
		}
		edgeSeen[[2]int{a, b}] = true
		ds.KnowsEdges = append(ds.KnowsEdges, EdgeSpec{
			ID:    fmt.Sprintf("knows-%d-%d", a, b),
			From:  customerVID(a),
			To:    customerVID(b),
			Label: "knows",
			Props: mmvalue.ObjectOf("since", 2000+rng.Intn(17)),
		})
	}
	return ds
}

func productID(i int) string   { return fmt.Sprintf("p%06d", i) }
func orderID(i int) string     { return fmt.Sprintf("o%08d", i) }
func customerVID(i int) string { return fmt.Sprintf("c%06d", i) }

// ProductID renders the document id of product number i (1-based).
func ProductID(i int) string { return productID(i) }

// OrderID renders the document id of order number i (1-based).
func OrderID(i int) string { return orderID(i) }

// CustomerVID renders the graph vertex id of customer i (1-based).
func CustomerVID(i int) string { return customerVID(i) }

// FeedbackKey renders the key-value key for feedback on an order.
func FeedbackKey(customerID int, orderID string) string {
	return fmt.Sprintf("feedback/%06d/%s", customerID, orderID)
}

// Target is the set of stores a dataset loads into. Both the unified
// engine and the federation expose stores of exactly these types.
type Target struct {
	Relational *relational.DB
	Docs       *document.Store
	Graph      *graph.Store
	KV         *kv.Store
	XML        *xmlstore.Store
}

// Load copies the dataset into the target stores (auto-committed, no
// cross-store transaction needed for an initial load) and creates the
// benchmark's standard secondary indexes.
func (ds *Dataset) Load(t Target) error { return ds.LoadWithOptions(t, true) }

// LoadWithOptions is Load with control over whether the benchmark's
// standard secondary indexes (customer.city, orders.customer_id,
// products.category) are created — the index-ablation experiment
// loads without them.
func (ds *Dataset) LoadWithOptions(t Target, createIndexes bool) error {
	cust, err := t.Relational.CreateTable("customer", CustomerSchema())
	if err != nil {
		return err
	}
	for _, row := range ds.Customers {
		if err := cust.Insert(nil, row); err != nil {
			return err
		}
	}
	if createIndexes {
		if err := cust.CreateIndex("city"); err != nil {
			return err
		}
	}

	orders := t.Docs.Collection("orders")
	products := t.Docs.Collection("products")
	for _, p := range ds.Products {
		if err := products.Insert(nil, p); err != nil {
			return err
		}
	}
	for _, o := range ds.Orders {
		if err := orders.Insert(nil, o); err != nil {
			return err
		}
	}
	if createIndexes {
		if err := orders.CreateIndex("customer_id"); err != nil {
			return err
		}
		if err := products.CreateIndex("category"); err != nil {
			return err
		}
	}

	for _, key := range ds.FeedbackKeys {
		if err := t.KV.Put(nil, key, ds.Feedback[key]); err != nil {
			return err
		}
	}

	for oid, inv := range ds.Invoices {
		if err := t.XML.Put(nil, oid, inv); err != nil {
			return err
		}
	}

	// Graph: customer and product vertices, then edges.
	for i := 1; i <= len(ds.Customers); i++ {
		if err := t.Graph.AddVertex(nil, graph.VID(customerVID(i)), "customer", mmvalue.ObjectOf("id", i)); err != nil {
			return err
		}
	}
	for i := 1; i <= len(ds.Products); i++ {
		if err := t.Graph.AddVertex(nil, graph.VID("p"+productID(i)[1:]), "product", mmvalue.ObjectOf("id", i)); err != nil {
			return err
		}
	}
	for _, e := range ds.KnowsEdges {
		if err := t.Graph.AddEdge(nil, graph.EID(e.ID), e.Label, graph.VID(e.From), graph.VID(e.To), e.Props); err != nil {
			return err
		}
	}
	for _, e := range ds.PurchaseEdges {
		if err := t.Graph.AddEdge(nil, graph.EID(e.ID), e.Label, graph.VID(e.From), graph.VID(e.To), e.Props); err != nil {
			return err
		}
	}
	return nil
}
