// Logs dataset: the large-value suite's data shape. A document
// collection of log records (indexed by level and source) carries a
// fixed level distribution — debug 30%, info 40%, warn 20%, error 8%,
// fatal 2% — so level-scoped queries sweep secondary-index selectivity
// from 2% to 40%. Error-class records additionally own an XML payload
// blob under the same id, giving the suite a large-value fetch path
// and a document<->blob presence invariant to probe.
package datagen

import (
	"fmt"
	"strings"

	"udbench/internal/mmvalue"
	"udbench/internal/xmlstore"
)

// Reference log entity counts at scale factor 1.
const (
	BaseLogSources = 24
	BaseLogs       = 5000
	// LogSourceZipfTheta skews records toward chatty sources.
	LogSourceZipfTheta = 0.7
	// LogMessageBytes sizes the filler payload of every log message —
	// deliberately large relative to the other suites' values, so scan
	// batching and value copying dominate.
	LogMessageBytes = 256
)

// LogLevels lists the log levels from most to least frequent.
var LogLevels = []string{"debug", "info", "warn", "error", "fatal"}

// logLevelCum is the cumulative per-mille distribution over LogLevels:
// debug 300, info 400, warn 200, error 80, fatal 20.
var logLevelCum = []int{300, 700, 900, 980, 1000}

// LogLevelOf maps a uniform 1..5 draw (Params.Rating) to a level.
func LogLevelOf(rating int) string {
	if rating < 1 || rating > len(LogLevels) {
		return LogLevels[0]
	}
	return LogLevels[rating-1]
}

// LogHasBlob reports whether records of a level carry an XML payload
// blob (the error classes do).
func LogHasBlob(level string) bool { return level == "error" || level == "fatal" }

// LogsDataset is the materialized logs suite dataset.
type LogsDataset struct {
	Config Config
	// Records are JSON documents (_id LogID(i)).
	Records []mmvalue.Value
	// Blobs maps log id -> XML payload for error-class records.
	Blobs map[string]*xmlstore.Node
	// BlobIDs lists blob keys in insertion order.
	BlobIDs []string
}

// LogCounts returns the scaled entity counts for a config.
func LogCounts(cfg Config) (sources, logs int) {
	sf := cfg.ScaleFactor
	if sf < 0.01 {
		sf = 0.01
	}
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 1 {
			n = 1
		}
		return n
	}
	return scale(BaseLogSources), scale(BaseLogs)
}

// LogID renders the document id of generated log record i (1-based).
func LogID(i int) string { return fmt.Sprintf("l%08d", i) }

// LogSourceID renders the source name of source number i (1-based).
func LogSourceID(i int) string { return fmt.Sprintf("s%03d", i) }

// LogBlob builds the XML payload blob of an error-class record.
func LogBlob(id, level, source, msg string) *xmlstore.Node {
	return xmlstore.NewElement("payload",
		xmlstore.Attr{Name: "id", Value: id},
		xmlstore.Attr{Name: "level", Value: level},
		xmlstore.Attr{Name: "source", Value: source},
	).Append(
		xmlstore.NewElement("stack").Append(xmlstore.NewText(msg)),
	)
}

// GenerateLogs materializes the logs dataset deterministically.
func GenerateLogs(cfg Config) *LogsDataset {
	rng := NewRNG(cfg.Seed*0x9e3779b9 + 0x109f)
	nSrc, nLogs := LogCounts(cfg)
	ds := &LogsDataset{
		Config: cfg,
		Blobs:  make(map[string]*xmlstore.Node),
	}
	verbs := []string{"handled", "rejected", "retried", "timed out on", "queued", "flushed"}
	srcZ := NewZipf(rng, nSrc, LogSourceZipfTheta)
	for i := 1; i <= nLogs; i++ {
		id := LogID(i)
		level := LogLevels[len(logLevelCum)-1]
		draw := rng.Intn(1000)
		for li, cum := range logLevelCum {
			if draw < cum {
				level = LogLevels[li]
				break
			}
		}
		source := LogSourceID(srcZ.Next() + 1)
		msg := fmt.Sprintf("%s %s request %d: %s", source, Pick(rng, verbs), i,
			strings.Repeat("x", LogMessageBytes))
		ds.Records = append(ds.Records, mmvalue.ObjectOf(
			"_id", id,
			"level", level,
			"source", source,
			"seq", i,
			"msg", msg,
		))
		if LogHasBlob(level) {
			ds.Blobs[id] = LogBlob(id, level, source, msg)
			ds.BlobIDs = append(ds.BlobIDs, id)
		}
	}
	return ds
}

// NumSources returns the source count the generator drew from.
func (ds *LogsDataset) NumSources() int {
	n, _ := LogCounts(ds.Config)
	return n
}

// NumRecords returns the generated record count.
func (ds *LogsDataset) NumRecords() int { return len(ds.Records) }

// Load copies the dataset into the target stores and creates the
// level and source secondary indexes the selectivity sweeps probe.
func (ds *LogsDataset) Load(t Target) error {
	logs := t.Docs.Collection("logs")
	for _, doc := range ds.Records {
		if err := logs.Insert(nil, doc); err != nil {
			return err
		}
	}
	if err := logs.CreateIndex("level"); err != nil {
		return err
	}
	if err := logs.CreateIndex("source"); err != nil {
		return err
	}
	for _, id := range ds.BlobIDs {
		if err := t.XML.Put(nil, id, ds.Blobs[id]); err != nil {
			return err
		}
	}
	return nil
}
