package consistency

import (
	"fmt"
	"time"

	"udbench/internal/datagen"
	"udbench/internal/mmvalue"
	"udbench/internal/replica"
)

// ProbeConfig drives one deterministic replica-consistency experiment
// (experiment T3): clients write and read a replicated key space under
// a configurable apply lag, on a virtual clock.
type ProbeConfig struct {
	// Clients is the number of simulated client sessions.
	Clients int
	// Keys is the size of the shared key space.
	Keys int
	// OpsPerClient is the number of write+read rounds per client.
	OpsPerClient int
	// Replicas is the replica count.
	Replicas int
	// Lag is the replica apply lag (0 = synchronous/ACID-like reads).
	Lag time.Duration
	// OpGap is the virtual time between consecutive operations.
	OpGap time.Duration
	// ReadFromPrimary reads from the primary instead of replicas
	// (models the ACID / strong-consistency configuration).
	ReadFromPrimary bool
	// Seed drives the deterministic schedule.
	Seed uint64
}

// ProbeResult couples the metric report with the configuration that
// produced it.
type ProbeResult struct {
	Config ProbeConfig
	Report Report
	// Convergence is the time after the last write at which every
	// replica has applied the full log.
	Convergence time.Duration
}

// RunProbe executes the experiment: each round, a client writes one
// key on the primary, virtual time advances by OpGap, then the client
// reads a key (half the time its own last-written key, exercising
// read-your-writes) from a replica chosen round-robin (or the primary
// in strong mode). All scheduling is deterministic in Seed.
func RunProbe(cfg ProbeConfig) ProbeResult {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 16
	}
	if cfg.OpsPerClient <= 0 {
		cfg.OpsPerClient = 50
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.OpGap <= 0 {
		cfg.OpGap = time.Millisecond
	}
	clock := replica.NewVirtualClock(time.Unix(1_000_000, 0))
	cluster := replica.NewCluster(cfg.Replicas, func(int) time.Duration { return cfg.Lag }, clock.Now)
	rng := datagen.NewRNG(cfg.Seed + 0xc0ffee)
	checker := NewChecker()

	lastKeyOf := make([]string, cfg.Clients)
	readRR := 0
	for round := 0; round < cfg.OpsPerClient; round++ {
		for client := 0; client < cfg.Clients; client++ {
			// Write.
			key := fmt.Sprintf("k%03d", rng.Intn(cfg.Keys))
			seq := cluster.Write(key, mmvalue.ObjectOf("client", client, "round", round))
			checker.RecordWrite(client, key, seq)
			lastKeyOf[client] = key
			clock.Advance(cfg.OpGap)

			// Read: own key half the time (RYW probe), random otherwise.
			rkey := key
			if rng.Intn(2) == 0 {
				rkey = fmt.Sprintf("k%03d", rng.Intn(cfg.Keys))
			} else if lastKeyOf[client] != "" {
				rkey = lastKeyOf[client]
			}
			latest := cluster.ReadPrimary(rkey)
			var got replica.Versioned
			if cfg.ReadFromPrimary {
				got = latest
			} else {
				got = cluster.ReadReplica(readRR%cfg.Replicas, rkey)
				readRR++
			}
			checker.RecordRead(client, rkey, got.Seq, got.Wall, latest.Seq, latest.Wall)
			clock.Advance(cfg.OpGap)
		}
	}
	return ProbeResult{
		Config:      cfg,
		Report:      checker.Report(),
		Convergence: cluster.ConvergenceTime(),
	}
}
