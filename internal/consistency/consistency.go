// Package consistency implements the consistency-metrics pillar of the
// UDBMS benchmark: precise, reproducible measurements of consistency
// behaviour — staleness in versions and time, read-your-writes and
// monotonic-reads violations, and cross-model atomicity violations —
// computed from operation traces. The paper requires that "novel
// consistency metrics which describe consistency behavior for
// different models of data must be proposed in a precise way"; the
// definitions here are the precise forms the harness reports.
package consistency

import (
	"time"
)

// Checker accumulates a trace of writes and reads and computes the
// consistency metrics. It is not safe for concurrent use; the probe
// drives it from one goroutine (determinism is the point).
type Checker struct {
	writes int
	reads  int

	// lastWriteSeq[client][key] = newest seq the client wrote.
	lastWriteSeq map[int]map[string]uint64
	// lastReadSeq[client][key] = newest seq the client has read.
	lastReadSeq map[int]map[string]uint64

	rywViolations  int
	monoViolations int
	missingReads   int
	freshReads     int

	verStaleSum uint64
	verStaleMax uint64

	timeStaleSum time.Duration
	timeStaleMax time.Duration
	timeStaleN   int
}

// NewChecker returns an empty checker.
func NewChecker() *Checker {
	return &Checker{
		lastWriteSeq: make(map[int]map[string]uint64),
		lastReadSeq:  make(map[int]map[string]uint64),
	}
}

// RecordWrite notes that client wrote key at sequence seq.
func (c *Checker) RecordWrite(client int, key string, seq uint64) {
	c.writes++
	m := c.lastWriteSeq[client]
	if m == nil {
		m = make(map[string]uint64)
		c.lastWriteSeq[client] = m
	}
	if seq > m[key] {
		m[key] = seq
	}
}

// RecordRead notes that client read key and observed version readSeq
// (0 = key not visible) whose commit wall time was readWall, while the
// primary's newest version was latestSeq committed at latestWall.
func (c *Checker) RecordRead(client int, key string, readSeq uint64, readWall time.Time, latestSeq uint64, latestWall time.Time) {
	c.reads++

	// Read-your-writes: did this client's own newest write regress?
	if own := c.lastWriteSeq[client][key]; own > 0 && readSeq < own {
		c.rywViolations++
	}

	// Monotonic reads: per client+key the observed seq must not go
	// backwards.
	m := c.lastReadSeq[client]
	if m == nil {
		m = make(map[string]uint64)
		c.lastReadSeq[client] = m
	}
	if prev, ok := m[key]; ok && readSeq < prev {
		c.monoViolations++
	}
	if readSeq > m[key] {
		m[key] = readSeq
	}

	// Staleness.
	if readSeq == 0 && latestSeq > 0 {
		c.missingReads++
	}
	if latestSeq >= readSeq {
		d := latestSeq - readSeq
		c.verStaleSum += d
		if d > c.verStaleMax {
			c.verStaleMax = d
		}
		if d == 0 {
			c.freshReads++
		}
		if d > 0 && readSeq > 0 {
			td := latestWall.Sub(readWall)
			if td > 0 {
				c.timeStaleSum += td
				c.timeStaleN++
				if td > c.timeStaleMax {
					c.timeStaleMax = td
				}
			}
		}
	}
}

// Report is the computed metric set.
type Report struct {
	Writes int
	Reads  int

	// RYWViolations counts reads where a client failed to observe its
	// own newest write.
	RYWViolations int
	// MonotonicViolations counts reads that went backwards relative to
	// an earlier read by the same client on the same key.
	MonotonicViolations int
	// MissingReads counts reads that found no version although the
	// primary had one.
	MissingReads int
	// FreshReads counts reads that observed the newest version.
	FreshReads int

	// VersionStalenessMean/Max measure latestSeq - readSeq per read.
	VersionStalenessMean float64
	VersionStalenessMax  uint64

	// TimeStalenessMean/Max measure, for stale reads that did observe
	// some version, the commit-time gap between the newest version and
	// the version read (≈ the replication lag the reader experienced).
	TimeStalenessMean time.Duration
	TimeStalenessMax  time.Duration
}

// Report computes the metrics from the accumulated trace.
func (c *Checker) Report() Report {
	r := Report{
		Writes:              c.writes,
		Reads:               c.reads,
		RYWViolations:       c.rywViolations,
		MonotonicViolations: c.monoViolations,
		MissingReads:        c.missingReads,
		FreshReads:          c.freshReads,
		VersionStalenessMax: c.verStaleMax,
		TimeStalenessMax:    c.timeStaleMax,
	}
	if c.reads > 0 {
		r.VersionStalenessMean = float64(c.verStaleSum) / float64(c.reads)
	}
	if c.timeStaleN > 0 {
		r.TimeStalenessMean = c.timeStaleSum / time.Duration(c.timeStaleN)
	}
	return r
}

// AtomicityChecker detects cross-model atomicity violations: a
// transaction's writes spread over several stores must be visible
// all-or-nothing. Register each transaction's write set, then feed it
// observed snapshots.
type AtomicityChecker struct {
	groups []writeGroup
	// violations counts observed partially-visible groups.
	violations int
	snapshots  int
}

type writeGroup struct {
	id     string
	writes map[string]uint64 // resource -> seq that the txn installed
}

// NewAtomicityChecker returns an empty checker.
func NewAtomicityChecker() *AtomicityChecker {
	return &AtomicityChecker{}
}

// RegisterTxn records that transaction id installed the given
// resource→sequence versions (resources span stores, e.g.
// "doc/orders/o1", "xml/o1").
func (a *AtomicityChecker) RegisterTxn(id string, writes map[string]uint64) {
	cp := make(map[string]uint64, len(writes))
	for k, v := range writes {
		cp[k] = v
	}
	a.groups = append(a.groups, writeGroup{id: id, writes: cp})
}

// ObserveSnapshot feeds the checker one observed state: for each
// resource, the sequence number the observer saw (missing resources =
// 0). It returns the ids of transactions whose writes were partially
// visible in this snapshot.
func (a *AtomicityChecker) ObserveSnapshot(observed map[string]uint64) []string {
	a.snapshots++
	var torn []string
	for _, g := range a.groups {
		sawSome, sawAll := false, true
		for res, seq := range g.writes {
			if observed[res] >= seq {
				sawSome = true
			} else {
				sawAll = false
			}
		}
		if sawSome && !sawAll {
			torn = append(torn, g.id)
		}
	}
	a.violations += len(torn)
	return torn
}

// Violations returns the cumulative count of partially-visible
// transaction observations.
func (a *AtomicityChecker) Violations() int { return a.violations }

// Snapshots returns how many snapshots were observed.
func (a *AtomicityChecker) Snapshots() int { return a.snapshots }
