package consistency

import (
	"testing"
	"time"
)

var epoch = time.Unix(1_000_000, 0)

func TestCheckerFreshReads(t *testing.T) {
	c := NewChecker()
	c.RecordWrite(1, "k", 1)
	c.RecordRead(1, "k", 1, epoch, 1, epoch)
	r := c.Report()
	if r.Writes != 1 || r.Reads != 1 {
		t.Fatalf("counts = %+v", r)
	}
	if r.RYWViolations != 0 || r.MonotonicViolations != 0 || r.MissingReads != 0 {
		t.Errorf("fresh read produced violations: %+v", r)
	}
	if r.FreshReads != 1 || r.VersionStalenessMean != 0 {
		t.Errorf("freshness wrong: %+v", r)
	}
}

func TestCheckerRYWViolation(t *testing.T) {
	c := NewChecker()
	c.RecordWrite(1, "k", 5)
	// Client 1 reads an older version of its own write: violation.
	c.RecordRead(1, "k", 3, epoch, 5, epoch.Add(time.Second))
	// Client 2 reading old data is NOT an RYW violation (never wrote).
	c.RecordRead(2, "k", 3, epoch, 5, epoch.Add(time.Second))
	r := c.Report()
	if r.RYWViolations != 1 {
		t.Errorf("RYW violations = %d, want 1", r.RYWViolations)
	}
}

func TestCheckerMonotonicViolation(t *testing.T) {
	c := NewChecker()
	c.RecordRead(1, "k", 5, epoch, 5, epoch)
	c.RecordRead(1, "k", 3, epoch, 6, epoch) // went backwards
	c.RecordRead(1, "k", 6, epoch, 6, epoch) // recovered
	c.RecordRead(2, "k", 3, epoch, 6, epoch) // other client: fine
	r := c.Report()
	if r.MonotonicViolations != 1 {
		t.Errorf("monotonic violations = %d, want 1", r.MonotonicViolations)
	}
}

func TestCheckerStaleness(t *testing.T) {
	c := NewChecker()
	w1 := epoch
	w5 := epoch.Add(40 * time.Millisecond)
	// Read version 1 while latest is 5, committed 40ms apart.
	c.RecordRead(1, "k", 1, w1, 5, w5)
	c.RecordRead(1, "k", 5, w5, 5, w5)
	r := c.Report()
	if r.VersionStalenessMax != 4 {
		t.Errorf("version staleness max = %d", r.VersionStalenessMax)
	}
	if r.VersionStalenessMean != 2 {
		t.Errorf("version staleness mean = %g", r.VersionStalenessMean)
	}
	if r.TimeStalenessMax != 40*time.Millisecond {
		t.Errorf("time staleness max = %v", r.TimeStalenessMax)
	}
	if r.TimeStalenessMean != 40*time.Millisecond {
		t.Errorf("time staleness mean = %v", r.TimeStalenessMean)
	}
}

func TestCheckerMissingReads(t *testing.T) {
	c := NewChecker()
	c.RecordRead(1, "k", 0, time.Time{}, 3, epoch)
	r := c.Report()
	if r.MissingReads != 1 {
		t.Errorf("missing reads = %d", r.MissingReads)
	}
	// Key that never existed anywhere is not "missing".
	c2 := NewChecker()
	c2.RecordRead(1, "k", 0, time.Time{}, 0, time.Time{})
	if c2.Report().MissingReads != 0 {
		t.Error("read of never-written key should not count as missing")
	}
}

func TestAtomicityChecker(t *testing.T) {
	a := NewAtomicityChecker()
	a.RegisterTxn("t1", map[string]uint64{"doc/o1": 10, "xml/o1": 11, "kv/f1": 12})
	// Fully visible: no violation.
	torn := a.ObserveSnapshot(map[string]uint64{"doc/o1": 10, "xml/o1": 11, "kv/f1": 12})
	if len(torn) != 0 {
		t.Errorf("full visibility reported torn: %v", torn)
	}
	// Fully invisible: no violation.
	torn = a.ObserveSnapshot(map[string]uint64{"doc/o1": 9, "xml/o1": 8})
	if len(torn) != 0 {
		t.Errorf("pre-state reported torn: %v", torn)
	}
	// Partial: violation.
	torn = a.ObserveSnapshot(map[string]uint64{"doc/o1": 10, "xml/o1": 8, "kv/f1": 12})
	if len(torn) != 1 || torn[0] != "t1" {
		t.Errorf("partial visibility = %v", torn)
	}
	if a.Violations() != 1 || a.Snapshots() != 3 {
		t.Errorf("cumulative = %d/%d", a.Violations(), a.Snapshots())
	}
	// Newer versions than the txn's count as visible.
	torn = a.ObserveSnapshot(map[string]uint64{"doc/o1": 20, "xml/o1": 21, "kv/f1": 22})
	if len(torn) != 0 {
		t.Error("overwritten state should count as visible")
	}
}

func TestProbeStrongModeIsClean(t *testing.T) {
	res := RunProbe(ProbeConfig{
		Clients: 4, Keys: 8, OpsPerClient: 40, Replicas: 2,
		Lag: 50 * time.Millisecond, ReadFromPrimary: true, Seed: 1,
	})
	r := res.Report
	if r.RYWViolations != 0 || r.MonotonicViolations != 0 || r.MissingReads != 0 {
		t.Errorf("strong mode produced anomalies: %+v", r)
	}
	if r.VersionStalenessMean != 0 {
		t.Errorf("strong mode staleness = %g", r.VersionStalenessMean)
	}
	if r.FreshReads != r.Reads {
		t.Errorf("strong mode: %d/%d fresh", r.FreshReads, r.Reads)
	}
}

func TestProbeZeroLagReplicasAreClean(t *testing.T) {
	res := RunProbe(ProbeConfig{
		Clients: 4, Keys: 8, OpsPerClient: 40, Replicas: 3,
		Lag: 0, Seed: 1,
	})
	r := res.Report
	if r.RYWViolations != 0 || r.VersionStalenessMean != 0 {
		t.Errorf("zero-lag replicas produced staleness: %+v", r)
	}
	if res.Convergence != 0 {
		t.Errorf("zero-lag convergence = %v", res.Convergence)
	}
}

func TestProbeLagProducesAnomalies(t *testing.T) {
	res := RunProbe(ProbeConfig{
		Clients: 4, Keys: 8, OpsPerClient: 60, Replicas: 2,
		Lag: 20 * time.Millisecond, OpGap: time.Millisecond, Seed: 1,
	})
	r := res.Report
	if r.RYWViolations == 0 {
		t.Error("lagging replicas should violate read-your-writes")
	}
	if r.VersionStalenessMean <= 0 {
		t.Error("lagging replicas should show version staleness")
	}
	if r.TimeStalenessMean <= 0 {
		t.Error("lagging replicas should show time staleness")
	}
	if res.Convergence != 20*time.Millisecond {
		t.Errorf("convergence = %v", res.Convergence)
	}
}

func TestProbeStalenessTracksLag(t *testing.T) {
	// The expected T3 shape: mean time staleness grows ~linearly with
	// the injected lag.
	var prev time.Duration
	for _, lag := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond} {
		res := RunProbe(ProbeConfig{
			Clients: 4, Keys: 8, OpsPerClient: 80, Replicas: 2,
			Lag: lag, OpGap: time.Millisecond, Seed: 7,
		})
		got := res.Report.TimeStalenessMean
		if got <= prev {
			t.Errorf("staleness did not grow with lag %v: %v <= %v", lag, got, prev)
		}
		prev = got
	}
}

func TestProbeDeterminism(t *testing.T) {
	cfg := ProbeConfig{Clients: 3, Keys: 5, OpsPerClient: 30, Replicas: 2,
		Lag: 15 * time.Millisecond, Seed: 9}
	a := RunProbe(cfg)
	b := RunProbe(cfg)
	if a.Report != b.Report {
		t.Errorf("probe not deterministic:\n%+v\n%+v", a.Report, b.Report)
	}
}

func TestProbeDefaults(t *testing.T) {
	res := RunProbe(ProbeConfig{Seed: 1})
	if res.Report.Reads == 0 || res.Report.Writes == 0 {
		t.Error("defaulted probe did nothing")
	}
}
