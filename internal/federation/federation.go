// Package federation implements the polyglot-persistence baseline the
// UDBMS benchmark compares against: five independent single-model
// stores, each with its own transaction manager (its own lock space,
// timestamps and commit point), glued together by an application-level
// two-phase-commit coordinator and client-side joins.
//
// Two structural costs distinguish it from the unified engine:
//
//  1. Every store operation pays a simulated network hop (HopLatency) —
//     a federation talks to separate server processes;
//  2. Cross-model transactions run 2PC over per-store local
//     transactions: locks are held across the full prepare+commit
//     rounds, and a coordinator failure between per-store commits
//     leaves the federation in a mixed state (an atomicity violation
//     the benchmark's consistency experiment counts).
//
// Reads have no federation-wide snapshot: each store serves its own
// latest state, so cross-model reads can observe torn states that the
// unified engine never shows.
package federation

import (
	"errors"
	"fmt"
	"time"

	"udbench/internal/document"
	"udbench/internal/graph"
	"udbench/internal/kv"
	"udbench/internal/relational"
	"udbench/internal/txn"
	"udbench/internal/xmlstore"
)

// ErrCoordinatorCrash is returned when failure injection stops the
// coordinator between per-store commits; some stores committed, some
// aborted.
var ErrCoordinatorCrash = errors.New("federation: coordinator crashed mid-commit")

// Federation bundles five independent single-model stores.
type Federation struct {
	// HopLatency is the simulated per-operation network delay paid on
	// every store access (0 disables the simulation).
	HopLatency time.Duration

	// CrashAfterNCommits, when >= 0, makes the next federated commit
	// stop after that many per-store commits, simulating a coordinator
	// crash (-1 disables). It auto-resets to -1 after firing.
	CrashAfterNCommits int

	relMgr, docMgr, graphMgr, kvMgr, xmlMgr *txn.Manager

	Relational *relational.DB
	Docs       *document.Store
	Graph      *graph.Store
	KV         *kv.Store
	XML        *xmlstore.Store
}

// Open creates an empty federation.
func Open() *Federation {
	f := &Federation{
		CrashAfterNCommits: -1,
		relMgr:             txn.NewManager(),
		docMgr:             txn.NewManager(),
		graphMgr:           txn.NewManager(),
		kvMgr:              txn.NewManager(),
		xmlMgr:             txn.NewManager(),
	}
	f.Relational = relational.NewDB(f.relMgr)
	f.Docs = document.NewStore("doc", f.docMgr)
	f.Graph = graph.NewStore("graph", f.graphMgr)
	f.KV = kv.NewStore("kv", f.kvMgr)
	f.XML = xmlstore.NewStore("xml", f.xmlMgr)
	return f
}

// LockStats aggregates lock-table telemetry across the five per-store
// managers (summed shard-by-index — each store has its own lock table,
// so the per-shard rows describe the combined stripes, not one table).
func (f *Federation) LockStats() txn.LockStats {
	out := f.relMgr.LockStats()
	for _, m := range []*txn.Manager{f.docMgr, f.graphMgr, f.kvMgr, f.xmlMgr} {
		out = out.Merge(m.LockStats())
	}
	return out
}

// Hop simulates one network round trip to a store. Exported so
// workloads can charge read paths explicitly.
func (f *Federation) Hop() {
	if f.HopLatency > 0 {
		time.Sleep(f.HopLatency)
	}
}

// FTx is a federated transaction: a lazily started local transaction
// per store, committed with two-phase commit.
type FTx struct {
	f      *Federation
	locals map[string]*txn.Tx
	order  []string
}

// Begin starts a federated transaction.
func (f *Federation) Begin() *FTx {
	return &FTx{f: f, locals: make(map[string]*txn.Tx)}
}

func (t *FTx) local(store string, mgr *txn.Manager) *txn.Tx {
	if tx, ok := t.locals[store]; ok {
		return tx
	}
	t.f.Hop() // BEGIN round trip
	tx := mgr.Begin()
	t.locals[store] = tx
	t.order = append(t.order, store)
	return tx
}

// Relational returns the local transaction on the relational store.
func (t *FTx) Relational() *txn.Tx { return t.local("relational", t.f.relMgr) }

// Docs returns the local transaction on the document store.
func (t *FTx) Docs() *txn.Tx { return t.local("doc", t.f.docMgr) }

// Graph returns the local transaction on the graph store.
func (t *FTx) Graph() *txn.Tx { return t.local("graph", t.f.graphMgr) }

// KV returns the local transaction on the key-value store.
func (t *FTx) KV() *txn.Tx { return t.local("kv", t.f.kvMgr) }

// XML returns the local transaction on the XML store.
func (t *FTx) XML() *txn.Tx { return t.local("xml", t.f.xmlMgr) }

// Commit runs two-phase commit: one prepare hop per store (all local
// work already holds locks), then one commit hop per store. If failure
// injection crashes the coordinator mid-commit, already-committed
// stores stay committed while the rest abort — the atomicity violation
// of a blocking 2PC without recovery.
func (t *FTx) Commit() error {
	// Prepare phase: one round trip per participant; local work is
	// already durable in memory, so prepare always votes yes here.
	for range t.order {
		t.f.Hop()
	}
	// Commit phase.
	committed := 0
	crashAt := t.f.CrashAfterNCommits
	for _, store := range t.order {
		if crashAt >= 0 && committed == crashAt {
			t.f.CrashAfterNCommits = -1
			for _, rest := range t.order[committed:] {
				t.locals[rest].Abort()
			}
			return fmt.Errorf("%w after %d/%d participants", ErrCoordinatorCrash, committed, len(t.order))
		}
		t.f.Hop()
		if _, err := t.locals[store].Commit(); err != nil {
			// Local commit can only fail on a closed transaction;
			// treat as partial failure like a crash.
			for _, rest := range t.order[committed+1:] {
				t.locals[rest].Abort()
			}
			return fmt.Errorf("federation: participant %s failed: %w", store, err)
		}
		committed++
	}
	return nil
}

// Abort rolls back every local transaction.
func (t *FTx) Abort() {
	for _, store := range t.order {
		t.f.Hop()
		t.locals[store].Abort()
	}
}

// RunTx executes fn in a federated transaction with 2PC commit,
// retrying deadlock victims up to three times.
func (f *Federation) RunTx(fn func(t *FTx) error) error {
	for attempt := 0; ; attempt++ {
		ftx := f.Begin()
		err := fn(ftx)
		if err == nil {
			err = ftx.Commit()
			if err == nil {
				return nil
			}
			if errors.Is(err, ErrCoordinatorCrash) {
				return err // partial commit: retrying cannot help
			}
		} else {
			ftx.Abort()
		}
		if !errors.Is(err, txn.ErrDeadlock) || attempt >= 3 {
			return err
		}
	}
}

// Stats mirrors udbms.Stats for the federation.
type Stats struct {
	Tables      map[string]int
	Collections map[string]int
	Vertices    int
	Edges       int
	KVPairs     int
	XMLDocs     int
}

// Stats counts live records in every store.
func (f *Federation) Stats() Stats {
	st := Stats{Tables: make(map[string]int), Collections: make(map[string]int)}
	for _, name := range f.Relational.TableNames() {
		t, _ := f.Relational.Table(name)
		st.Tables[name] = t.Count()
	}
	for _, name := range f.Docs.CollectionNames() {
		st.Collections[name] = f.Docs.Collection(name).Count()
	}
	st.Vertices = f.Graph.VertexCount(nil)
	st.Edges = f.Graph.EdgeCount(nil)
	st.KVPairs = f.KV.Len()
	st.XMLDocs = f.XML.Count()
	return st
}
