package federation

import (
	"errors"
	"testing"

	"udbench/internal/consistency"
	"udbench/internal/mmvalue"
)

// TestCrashDetectedByAtomicityChecker ties the federation's 2PC crash
// injection to the benchmark's atomicity metric: the partially
// committed state must be flagged as a cross-model atomicity violation
// by the consistency checker.
func TestCrashDetectedByAtomicityChecker(t *testing.T) {
	f := seedFed(t)
	checker := consistency.NewAtomicityChecker()

	// The transaction intends to install "version 1" of both the doc
	// and the kv resource.
	checker.RegisterTxn("txn-1", map[string]uint64{
		"doc/orders/o1":    1,
		"kv/feedback/1/o1": 1,
	})

	f.CrashAfterNCommits = 1
	err := f.RunTx(func(ftx *FTx) error {
		if err := f.Docs.Collection("orders").SetPath(ftx.Docs(), "o1", "total", mmvalue.Float(777)); err != nil {
			return err
		}
		return f.KV.Put(ftx.KV(), "feedback/1/o1", mmvalue.ObjectOf("rating", 9))
	})
	if !errors.Is(err, ErrCoordinatorCrash) {
		t.Fatalf("expected coordinator crash, got %v", err)
	}

	// Observe the post-crash state: which intended writes landed?
	observed := map[string]uint64{}
	doc, _ := f.Docs.Collection("orders").Get(nil, "o1")
	if v, _ := mmvalue.ParsePath("total").Lookup(doc); mmvalue.Equal(v, mmvalue.Float(777)) {
		observed["doc/orders/o1"] = 1
	}
	fb, _ := f.KV.Get(nil, "feedback/1/o1")
	if v, _ := fb.MustObject().Get("rating"); mmvalue.Equal(v, mmvalue.Int(9)) {
		observed["kv/feedback/1/o1"] = 1
	}

	torn := checker.ObserveSnapshot(observed)
	if len(torn) != 1 || torn[0] != "txn-1" {
		t.Fatalf("atomicity checker missed the partial commit: %v (observed %v)", torn, observed)
	}
	if checker.Violations() != 1 {
		t.Errorf("violations = %d", checker.Violations())
	}
}

// TestCrashBeforeAnyCommitIsAtomic verifies that a coordinator crash
// before the first participant commit aborts everything — no
// violation.
func TestCrashBeforeAnyCommitIsAtomic(t *testing.T) {
	f := seedFed(t)
	f.CrashAfterNCommits = 0
	err := f.RunTx(func(ftx *FTx) error {
		f.Docs.Collection("orders").SetPath(ftx.Docs(), "o1", "total", mmvalue.Float(888))
		return f.KV.Put(ftx.KV(), "feedback/1/o1", mmvalue.ObjectOf("rating", 8))
	})
	if !errors.Is(err, ErrCoordinatorCrash) {
		t.Fatalf("err = %v", err)
	}
	doc, _ := f.Docs.Collection("orders").Get(nil, "o1")
	if v, _ := mmvalue.ParsePath("total").Lookup(doc); mmvalue.Equal(v, mmvalue.Float(888)) {
		t.Error("doc committed despite crash at 0")
	}
	fb, _ := f.KV.Get(nil, "feedback/1/o1")
	if v, _ := fb.MustObject().Get("rating"); mmvalue.Equal(v, mmvalue.Int(8)) {
		t.Error("kv committed despite crash at 0")
	}
}
