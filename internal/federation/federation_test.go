package federation

import (
	"errors"
	"testing"
	"time"

	"udbench/internal/mmvalue"
	"udbench/internal/relational"
	"udbench/internal/xmlstore"
)

func seedFed(t testing.TB) *Federation {
	t.Helper()
	f := Open()
	cust, err := f.Relational.CreateTable("customer", relational.MustSchema("id",
		relational.Column{Name: "id", Type: relational.TypeInt},
		relational.Column{Name: "name", Type: relational.TypeString},
	))
	if err != nil {
		t.Fatal(err)
	}
	cust.Insert(nil, mmvalue.ObjectOf("id", 1, "name", "alice"))
	f.Docs.Collection("orders").Insert(nil, mmvalue.ObjectOf("_id", "o1", "customer_id", 1, "total", 10.0))
	f.KV.Put(nil, "feedback/1/o1", mmvalue.ObjectOf("rating", 4))
	f.XML.Put(nil, "o1", xmlstore.MustParse(`<invoice id="o1"><total>10</total></invoice>`))
	f.Graph.AddVertex(nil, "c1", "customer", mmvalue.Null)
	return f
}

func TestFederatedTransactionCommit(t *testing.T) {
	f := seedFed(t)
	err := f.RunTx(func(ftx *FTx) error {
		if err := f.Docs.Collection("orders").SetPath(ftx.Docs(), "o1", "total", mmvalue.Float(99)); err != nil {
			return err
		}
		if err := f.KV.Put(ftx.KV(), "feedback/1/o1", mmvalue.ObjectOf("rating", 5)); err != nil {
			return err
		}
		return f.XML.Update(ftx.XML(), "o1", func(n *xmlstore.Node) (*xmlstore.Node, error) {
			n.SetAttr("status", "paid")
			return n, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := f.Docs.Collection("orders").Get(nil, "o1")
	if v, _ := mmvalue.ParsePath("total").Lookup(doc); !mmvalue.Equal(v, mmvalue.Float(99)) {
		t.Error("doc commit lost")
	}
	inv, _ := f.XML.Get(nil, "o1")
	if v, _ := inv.Attr("status"); v != "paid" {
		t.Error("xml commit lost")
	}
}

func TestFederatedAbortRollsBackAllStores(t *testing.T) {
	f := seedFed(t)
	boom := errors.New("boom")
	err := f.RunTx(func(ftx *FTx) error {
		f.Docs.Collection("orders").SetPath(ftx.Docs(), "o1", "total", mmvalue.Float(-5))
		f.KV.Put(ftx.KV(), "feedback/1/o1", mmvalue.ObjectOf("rating", 0))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	doc, _ := f.Docs.Collection("orders").Get(nil, "o1")
	if v, _ := mmvalue.ParsePath("total").Lookup(doc); !mmvalue.Equal(v, mmvalue.Float(10)) {
		t.Error("aborted doc write leaked")
	}
	fb, _ := f.KV.Get(nil, "feedback/1/o1")
	if v, _ := fb.MustObject().Get("rating"); !mmvalue.Equal(v, mmvalue.Int(4)) {
		t.Error("aborted kv write leaked")
	}
}

func TestCoordinatorCrashLeavesPartialState(t *testing.T) {
	f := seedFed(t)
	f.CrashAfterNCommits = 1 // commit exactly one participant, then crash
	err := f.RunTx(func(ftx *FTx) error {
		// Touch doc first, then kv: commit order follows first use.
		if err := f.Docs.Collection("orders").SetPath(ftx.Docs(), "o1", "total", mmvalue.Float(500)); err != nil {
			return err
		}
		return f.KV.Put(ftx.KV(), "feedback/1/o1", mmvalue.ObjectOf("rating", 1))
	})
	if !errors.Is(err, ErrCoordinatorCrash) {
		t.Fatalf("err = %v, want coordinator crash", err)
	}
	// The doc store committed; the kv store aborted: atomicity violated.
	doc, _ := f.Docs.Collection("orders").Get(nil, "o1")
	docTotal, _ := mmvalue.ParsePath("total").Lookup(doc)
	fb, _ := f.KV.Get(nil, "feedback/1/o1")
	rating, _ := fb.MustObject().Get("rating")
	committedDoc := mmvalue.Equal(docTotal, mmvalue.Float(500))
	committedKV := mmvalue.Equal(rating, mmvalue.Int(1))
	if !committedDoc || committedKV {
		t.Errorf("expected partial commit (doc=yes kv=no), got doc=%v kv=%v", committedDoc, committedKV)
	}
	// Injection auto-resets: the next transaction succeeds fully.
	if f.CrashAfterNCommits != -1 {
		t.Error("crash injection should reset")
	}
	err = f.RunTx(func(ftx *FTx) error {
		return f.KV.Put(ftx.KV(), "feedback/1/o1", mmvalue.ObjectOf("rating", 2))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHopLatencyCharged(t *testing.T) {
	f := seedFed(t)
	f.HopLatency = 2 * time.Millisecond
	start := time.Now()
	err := f.RunTx(func(ftx *FTx) error {
		// Two stores: begin hops (2) + prepare (2) + commit (2) = 6 hops minimum.
		f.KV.Put(ftx.KV(), "k", mmvalue.Int(1))
		f.Docs.Collection("orders").SetPath(ftx.Docs(), "o1", "x", mmvalue.Int(1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 12*time.Millisecond {
		t.Errorf("expected >= 12ms of hop latency, got %v", elapsed)
	}
}

func TestNoGlobalSnapshotAcrossStores(t *testing.T) {
	f := seedFed(t)
	// Two separate local transactions observe independent states:
	// update doc+kv "atomically", but a reader that reads kv first and
	// doc later (each at its own store's latest) can see the torn state.
	// Here we simply demonstrate the stores have independent oracles.
	ts1 := f.docMgr.Oracle().Current()
	f.KV.Put(nil, "only-kv", mmvalue.Int(1))
	ts2 := f.docMgr.Oracle().Current()
	if ts1 != ts2 {
		t.Error("kv write should not advance the doc store's oracle")
	}
	if f.kvMgr.Oracle().Current() == 0 {
		t.Error("kv write should advance the kv oracle")
	}
}

func TestFTxLocalReuse(t *testing.T) {
	f := seedFed(t)
	ftx := f.Begin()
	a := ftx.KV()
	b := ftx.KV()
	if a != b {
		t.Error("repeated access must reuse the local transaction")
	}
	g := ftx.Graph()
	r := ftx.Relational()
	if g == nil || r == nil {
		t.Error("lazy locals missing")
	}
	ftx.Abort()
	if err := f.KV.Put(a, "x", mmvalue.Int(1)); err == nil {
		t.Error("aborted local tx should reject writes")
	}
}

func TestStats(t *testing.T) {
	f := seedFed(t)
	st := f.Stats()
	if st.Tables["customer"] != 1 || st.Collections["orders"] != 1 ||
		st.Vertices != 1 || st.KVPairs != 1 || st.XMLDocs != 1 {
		t.Errorf("stats = %+v", st)
	}
}
